package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's parsed Retry-After hint (0 when absent).
	// The admission gate attaches it to load sheds that are worth retrying;
	// drain sheds deliberately omit it, so a terminating server is never
	// hammered by well-behaved clients.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsStatus reports whether err is an APIError with the given HTTP status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// RetryPolicy bounds the Client's automatic retry of 503 load sheds. A
// shed is only retried when the server attached a Retry-After hint — the
// admission gate's "overloaded, come back" signal — never on drain sheds
// (no hint: the server is going away). The wait before attempt k is
// max(BaseDelay<<k, hint) capped at MaxDelay, with jitter on the upper
// half so a fleet of retrying clients does not re-arrive in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 1 disables retries (the zero policy is a no-retry policy).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps every wait, including the server's hint (default 1s).
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 25 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// delay computes the jittered wait before retry number attempt (0-based),
// honoring the server's hint up to the policy cap.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	if attempt > 20 {
		attempt = 20 // shift guard; MaxAttempts bounds this long before
	}
	d := p.base() << attempt
	if hint > d {
		d = hint
	}
	if m := p.cap(); d > m {
		d = m
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// Client is a typed client for the HTTP serving layer: the load generator's
// network mode (cmd/serve -connect), the cluster router, and the end-to-end
// tests drive servers through it.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	retries atomic.Uint64
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient. The
// client does not retry; see WithRetry.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithRetry enables bounded retry of hinted 503 sheds on every
// re-sendable path (run, query, mutate, batch, replication — everything
// except streamed uploads) and returns c. Not safe to call concurrently
// with requests.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// Retries reports how many shed requests this client has retried over its
// lifetime (each wait-and-resend counts once).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// shouldRetry reports whether err is a retryable shed given that attempt
// tries have already happened, and if so waits out the backoff (bounded by
// ctx — a dead context turns the answer into no).
func (c *Client) shouldRetry(ctx context.Context, err error, attempt int) bool {
	if attempt+1 >= c.retry.attempts() {
		return false
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.RetryAfter <= 0 {
		return false
	}
	t := time.NewTimer(c.retry.delay(attempt, ae.RetryAfter))
	defer t.Stop()
	select {
	case <-t.C:
		c.retries.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

// do runs one JSON round trip (re-sending shed requests per the retry
// policy); out may be nil to discard the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = buf
	}
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		err = func() error {
			defer resp.Body.Close()
			return decodeResponse(resp, out)
		}()
		if !c.shouldRetry(ctx, err, attempt) {
			return err
		}
	}
}

// decodeResponse maps non-2xx responses onto APIError (capturing any
// Retry-After hint) and decodes 2xx bodies into out.
func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil {
			msg = eb.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg, RetryAfter: retryAfter(resp)}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryAfter parses the delay-seconds form of the Retry-After header (the
// only form this server emits). Absent or unparseable hints are 0.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Generate asks the server to build a named topology (gen.Family) and serve
// it.
func (c *Client) Generate(ctx context.Context, family string, n int, seed uint64) (*GraphInfo, error) {
	var info GraphInfo
	if err := c.do(ctx, http.MethodPost, "/v1/graphs", GenerateRequest{Family: family, N: n, Seed: seed}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Upload streams raw graph bytes in the named graphio format ("el",
// "dimacs", "metis.gz", ...).
func (c *Client) Upload(ctx context.Context, format string, data io.Reader) (*GraphInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs?format="+format, data)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info GraphInfo
	if err := decodeResponse(resp, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GraphInfo fetches one served graph's current state.
func (c *Client) GraphInfo(ctx context.Context, id string) (*GraphInfo, error) {
	var info GraphInfo
	if err := c.do(ctx, http.MethodGet, "/v1/graphs/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Graphs lists the served graphs.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var out []GraphInfo
	if err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteGraph stops serving id.
func (c *Client) DeleteGraph(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+id, nil, nil)
}

// Run invokes a registry algorithm on the served graph.
func (c *Client) Run(ctx context.Context, id string, rq RunRequest) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/run", rq, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Query runs a cluster / ball batch point query.
func (c *Client) Query(ctx context.Context, id string, qr QueryRequest) (*QueryResponse, error) {
	var res QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/query", qr, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// AddEdge inserts the undirected edge {u, v}.
func (c *Client) AddEdge(ctx context.Context, id string, u, v int) (*MutateResponse, error) {
	return c.mutate(ctx, id, "addedge", u, v)
}

// DeleteEdge removes the undirected edge {u, v}.
func (c *Client) DeleteEdge(ctx context.Context, id string, u, v int) (*MutateResponse, error) {
	return c.mutate(ctx, id, "deledge", u, v)
}

func (c *Client) mutate(ctx context.Context, id, op string, u, v int) (*MutateResponse, error) {
	var res MutateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/"+op, MutateRequest{U: u, V: v}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Compact folds the graph's delta overlay into a fresh CSR.
func (c *Client) Compact(ctx context.Context, id string) (*MutateResponse, error) {
	var res MutateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/compact", struct{}{}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Batch streams the requests as NDJSON and collects the response lines in
// order of arrival (the server preserves input order).
func (c *Client) Batch(ctx context.Context, id string, reqs []RunRequest) ([]BatchLine, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rq := range reqs {
		if err := enc.Encode(rq); err != nil {
			return nil, err
		}
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs/"+id+"/batch", bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err = c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode/100 == 2 {
			break
		}
		// A shed happens before the server starts streaming, so re-sending
		// the buffered batch is safe.
		err = decodeResponse(resp, nil)
		resp.Body.Close()
		if !c.shouldRetry(ctx, err, attempt) {
			return nil, err
		}
	}
	defer resp.Body.Close()
	var out []BatchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), batchLineLimit)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return out, fmt.Errorf("decoding batch line %d: %w", len(out), err)
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// Healthz probes liveness; a draining server returns an APIError with
// status 503.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

// Deltas pulls the owner-side delta export for id after the since cursor.
// A response with Resync=true means the window cannot serve the cursor and
// the caller must reposition via Export + Install.
func (c *Client) Deltas(ctx context.Context, id string, since uint64) (*DeltasResponse, error) {
	var out DeltasResponse
	if err := c.do(ctx, http.MethodGet, "/v1/graphs/"+id+"/deltas?since="+strconv.FormatUint(since, 10), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PushDeltas applies a batch of owner deltas to the node's replica of id.
// On a refused entry (409 epoch gap, 422 divergence) the returned response
// is still populated with the replica's position and the error carries the
// HTTP status, so the caller can decide between catch-up and resync.
func (c *Client) PushDeltas(ctx context.Context, id string, entries []WireDelta) (*ReplicateResponse, error) {
	payload, err := json.Marshal(ReplicateRequest{Entries: entries})
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs/"+id+"/deltas", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity:
			var rr ReplicateResponse
			err := json.NewDecoder(resp.Body).Decode(&rr)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return &rr, &APIError{Status: resp.StatusCode, Message: rr.Error}
			}
			return &rr, nil
		}
		err = decodeResponse(resp, nil)
		resp.Body.Close()
		if !c.shouldRetry(ctx, err, attempt) {
			return nil, err
		}
	}
}

// Export fetches a checkpoint of id's current snapshot: the raw checkpoint
// bytes plus the epoch and chain fingerprint they were taken at.
func (c *Client) Export(ctx context.Context, id string) (data []byte, epoch uint64, fingerprint string, err error) {
	for attempt := 0; ; attempt++ {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/graphs/"+id+"/export", nil)
		if rerr != nil {
			return nil, 0, "", rerr
		}
		resp, derr := c.hc.Do(req)
		if derr != nil {
			return nil, 0, "", derr
		}
		if resp.StatusCode/100 != 2 {
			err = decodeResponse(resp, nil)
			resp.Body.Close()
			if !c.shouldRetry(ctx, err, attempt) {
				return nil, 0, "", err
			}
			continue
		}
		data, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, 0, "", err
		}
		epoch, err = strconv.ParseUint(resp.Header.Get("X-Repro-Epoch"), 10, 64)
		if err != nil {
			return nil, 0, "", fmt.Errorf("bad X-Repro-Epoch: %w", err)
		}
		return data, epoch, resp.Header.Get("X-Repro-Fingerprint"), nil
	}
}

// Install creates a served graph from exported checkpoint bytes positioned
// at the given chain fingerprint — the resync half of replication.
func (c *Client) Install(ctx context.Context, fingerprint string, checkpoint []byte) (*GraphInfo, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.base+"/v1/graphs/install?fingerprint="+fingerprint, bytes.NewReader(checkpoint))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		var info GraphInfo
		err = func() error {
			defer resp.Body.Close()
			return decodeResponse(resp, &info)
		}()
		if err == nil {
			return &info, nil
		}
		if !c.shouldRetry(ctx, err, attempt) {
			return nil, err
		}
	}
}
