package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsStatus reports whether err is an APIError with the given HTTP status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Client is a typed client for the HTTP serving layer: the load generator's
// network mode (cmd/serve -connect) and the end-to-end tests drive the
// server through it.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do runs one JSON round trip; out may be nil to discard the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	var contentType string
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		contentType = "application/json"
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// decodeResponse maps non-2xx responses onto APIError and decodes 2xx
// bodies into out.
func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil {
			msg = eb.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Generate asks the server to build a named topology (gen.Family) and serve
// it.
func (c *Client) Generate(ctx context.Context, family string, n int, seed uint64) (*GraphInfo, error) {
	var info GraphInfo
	if err := c.do(ctx, http.MethodPost, "/v1/graphs", GenerateRequest{Family: family, N: n, Seed: seed}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Upload streams raw graph bytes in the named graphio format ("el",
// "dimacs", "metis.gz", ...).
func (c *Client) Upload(ctx context.Context, format string, data io.Reader) (*GraphInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs?format="+format, data)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info GraphInfo
	if err := decodeResponse(resp, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GraphInfo fetches one served graph's current state.
func (c *Client) GraphInfo(ctx context.Context, id string) (*GraphInfo, error) {
	var info GraphInfo
	if err := c.do(ctx, http.MethodGet, "/v1/graphs/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Graphs lists the served graphs.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var out []GraphInfo
	if err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteGraph stops serving id.
func (c *Client) DeleteGraph(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+id, nil, nil)
}

// Run invokes a registry algorithm on the served graph.
func (c *Client) Run(ctx context.Context, id string, rq RunRequest) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/run", rq, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Query runs a cluster / ball batch point query.
func (c *Client) Query(ctx context.Context, id string, qr QueryRequest) (*QueryResponse, error) {
	var res QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/query", qr, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// AddEdge inserts the undirected edge {u, v}.
func (c *Client) AddEdge(ctx context.Context, id string, u, v int) (*MutateResponse, error) {
	return c.mutate(ctx, id, "addedge", u, v)
}

// DeleteEdge removes the undirected edge {u, v}.
func (c *Client) DeleteEdge(ctx context.Context, id string, u, v int) (*MutateResponse, error) {
	return c.mutate(ctx, id, "deledge", u, v)
}

func (c *Client) mutate(ctx context.Context, id, op string, u, v int) (*MutateResponse, error) {
	var res MutateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/"+op, MutateRequest{U: u, V: v}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Compact folds the graph's delta overlay into a fresh CSR.
func (c *Client) Compact(ctx context.Context, id string) (*MutateResponse, error) {
	var res MutateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/graphs/"+id+"/compact", struct{}{}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Batch streams the requests as NDJSON and collects the response lines in
// order of arrival (the server preserves input order).
func (c *Client) Batch(ctx context.Context, id string, reqs []RunRequest) ([]BatchLine, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rq := range reqs {
		if err := enc.Encode(rq); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs/"+id+"/batch", &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeResponse(resp, nil)
	}
	var out []BatchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), batchLineLimit)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return out, fmt.Errorf("decoding batch line %d: %w", len(out), err)
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// Healthz probes liveness; a draining server returns an APIError with
// status 503.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}
