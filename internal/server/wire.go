package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/graphio"
	"repro/internal/store"
)

// Result is the JSON wire form of algo.Result: every deterministic field of
// the envelope, so an HTTP response can be compared bit-for-bit against a
// direct engine call (the end-to-end equivalence suite pins this, with only
// ElapsedNS — wall time — excluded from the comparison). Raw is
// deliberately absent: the typed payloads are in-process currency.
type Result struct {
	Algorithm string `json:"algorithm"`
	Key       string `json:"key"`
	Kind      string `json:"kind"`
	Snapshot  string `json:"snapshot,omitempty"`

	ClusterOf   []int32   `json:"cluster_of,omitempty"`
	ColorOf     []int32   `json:"color_of,omitempty"`
	Clusters    [][]int32 `json:"clusters,omitempty"`
	NumClusters int       `json:"num_clusters"`
	NumColors   int       `json:"num_colors,omitempty"`
	Unclustered int       `json:"unclustered,omitempty"`

	Solution []bool `json:"solution,omitempty"`
	Value    int64  `json:"value,omitempty"`
	Exact    bool   `json:"exact,omitempty"`
	Feasible bool   `json:"feasible,omitempty"`

	Rounds  int                `json:"rounds"`
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// ElapsedNS is the wall-clock compute time in nanoseconds (zero on
	// cache hits; excluded from equivalence comparisons).
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// WireResult converts an engine result into its wire form. Slices alias the
// (immutable, shared) envelope; callers must not mutate them.
func WireResult(r *algo.Result) *Result {
	return &Result{
		Algorithm:   r.Algorithm,
		Key:         r.Key,
		Kind:        r.Kind.String(),
		Snapshot:    r.Snapshot,
		ClusterOf:   r.ClusterOf,
		ColorOf:     r.ColorOf,
		Clusters:    r.Clusters,
		NumClusters: r.NumClusters,
		NumColors:   r.NumColors,
		Unclustered: r.Unclustered,
		Solution:    r.Solution,
		Value:       r.Value,
		Exact:       r.Exact,
		Feasible:    r.Feasible,
		Rounds:      r.Rounds,
		Metrics:     r.Metrics,
		ElapsedNS:   int64(r.Elapsed),
	}
}

// RunRequest is the body of POST /v1/graphs/{id}/run and of each line of a
// batch stream. Parameters arrive either as a JSON object (Params) or as a
// trace-language "k=v k=v" bag (Q); the two are merged, duplicate keys
// rejected.
type RunRequest struct {
	// Algo is a registry name or alias.
	Algo string `json:"algo"`
	// Params is the key=value parameter bag in object form.
	Params map[string]string `json:"params,omitempty"`
	// Q is the parameter bag in trace-line form ("eps=0.3 seed=4").
	Q string `json:"q,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = the
	// server's default); the request context is cancelled when it expires,
	// which stops the computation through the registry's cancellation
	// plumbing.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// errBadRequest marks client errors that must map to 400.
var errBadRequest = errors.New("bad request")

func badReqf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// decodeJSON strictly decodes one JSON value from r into v: unknown fields
// and trailing garbage are errors, so malformed requests fail loudly with
// 400 instead of silently running defaults.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badReqf("decoding body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badReqf("trailing data after JSON body")
	}
	return nil
}

// resolve validates the request against the registry: the algorithm must
// exist, the merged parameter bag must contain only declared keys, and every
// value must parse (Spec.CacheKey canonicalizes all of them). Returns the
// resolved spec and the merged bag.
func (rq *RunRequest) resolve() (*algo.Spec, algo.Params, error) {
	if rq.Algo == "" {
		return nil, nil, badReqf("missing algo (registry has %s)", strings.Join(algo.Names(), ", "))
	}
	spec, ok := algo.Get(rq.Algo)
	if !ok {
		return nil, nil, badReqf("unknown algorithm %q (registry has %s)", rq.Algo, strings.Join(algo.Names(), ", "))
	}
	params := make(algo.Params, len(rq.Params)+4)
	for k, v := range rq.Params {
		params[k] = v
	}
	if rq.Q != "" {
		bag, err := algo.ParseParamString(rq.Q)
		if err != nil {
			return nil, nil, badReqf("parsing q: %v", err)
		}
		for k, v := range bag {
			if _, dup := params[k]; dup {
				return nil, nil, badReqf("param %q set in both params and q", k)
			}
			params[k] = v
		}
	}
	if rq.TimeoutMS < 0 {
		return nil, nil, badReqf("negative timeout_ms %d", rq.TimeoutMS)
	}
	if _, err := spec.CacheKey(params); err != nil {
		return nil, nil, badReqf("%v", err)
	}
	return spec, params, nil
}

// timeout returns the effective deadline for the request.
func (rq *RunRequest) timeout(def time.Duration) time.Duration {
	if rq.TimeoutMS > 0 {
		return time.Duration(rq.TimeoutMS) * time.Millisecond
	}
	return def
}

// GenerateRequest is the JSON body of POST /v1/graphs when generating a
// graph server-side instead of uploading one.
type GenerateRequest struct {
	// Family is a gen.Family name: cycle|path|grid|torus|gnp|regular.
	Family string `json:"family"`
	// N is the approximate vertex count.
	N int `json:"n"`
	// Seed drives the generator's randomness.
	Seed uint64 `json:"seed,omitempty"`
}

// MutateRequest is the body of the addedge / deledge endpoints.
type MutateRequest struct {
	U int `json:"u"`
	V int `json:"v"`
}

// MutateResponse reports the outcome of a mutation.
type MutateResponse struct {
	// Applied is false when the mutation was a no-op (edge already
	// present / already absent).
	Applied bool `json:"applied"`
	// Epoch and Fingerprint identify the store version after the call.
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	M           int    `json:"m"`
}

// QueryRequest is the body of POST /v1/graphs/{id}/query: batch point
// queries served from the engine's cached decomposition (op "cluster") or
// straight off the snapshot overlay (op "ball"). Zero-valued cluster
// parameters take the trace-language defaults (eps 0.3, scale 0.05,
// seed 1).
type QueryRequest struct {
	Op       string  `json:"op"` // "cluster" | "ball"
	Vertices []int32 `json:"vertices"`
	// Radius is the ball radius (op "ball"; default 2).
	Radius int `json:"radius,omitempty"`
	// Eps, Scale, Seed, Skip2 select the ChangLi decomposition backing
	// op "cluster".
	Eps   float64 `json:"eps,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	Skip2 bool    `json:"skip2,omitempty"`
}

// QueryResponse carries the batch query results (one entry per requested
// vertex).
type QueryResponse struct {
	Clusters []int32   `json:"clusters,omitempty"`
	Balls    [][]int32 `json:"balls,omitempty"`
	// Snapshot is the fingerprint of the store version the query resolved.
	Snapshot string `json:"snapshot"`
}

// GraphInfo is the wire description of one served graph.
type GraphInfo struct {
	ID          string `json:"id"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Fingerprint string `json:"fingerprint"`
	Epoch       uint64 `json:"epoch"`
	PendingDeltas int    `json:"pending_deltas"`
	Patched       int    `json:"patched_vertices"`
	Adds          uint64 `json:"adds"`
	Dels          uint64 `json:"dels"`
	Compactions   uint64 `json:"compactions"`
	// DeltaBytes is the exact on-disk footprint of the pending delta log
	// (0 for memory-only graphs, which keep nothing on disk).
	DeltaBytes int64 `json:"delta_bytes"`
	// Durable reports whether mutations to this graph survive restarts;
	// CheckpointEpoch is the epoch of its on-disk checkpoint.
	Durable         bool   `json:"durable,omitempty"`
	CheckpointEpoch uint64 `json:"checkpoint_epoch,omitempty"`
	CreatedUnix     int64  `json:"created_unix"`
}

func graphInfo(sg *servedGraph) GraphInfo {
	st := sg.st.Stats()
	return GraphInfo{
		ID:              sg.id,
		N:               st.N,
		M:               st.M,
		Fingerprint:     st.Fingerprint.String(),
		Epoch:           st.Epoch,
		PendingDeltas:   st.PendingDeltas,
		Patched:         st.PatchedVertices,
		Adds:            st.Adds,
		Dels:            st.Dels,
		Compactions:     st.Compactions,
		DeltaBytes:      st.DeltaBytes,
		Durable:         st.Durable,
		CheckpointEpoch: st.CheckpointEpoch,
		CreatedUnix:     sg.created.Unix(),
	}
}

// mutateResponse builds the response for a mutation from a one-shot stats
// read.
func mutateResponse(applied bool, st store.Stats) MutateResponse {
	return MutateResponse{Applied: applied, Epoch: st.Epoch, Fingerprint: st.Fingerprint.String(), M: st.M}
}

// BatchLine is one line of a batch response stream: the 0-indexed position
// of the request in the input stream plus either its result or its error.
type BatchLine struct {
	Index  int     `json:"index"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	Status int     `json:"status,omitempty"` // HTTP-equivalent status for errors
}

// AlgorithmInfo describes one registry entry in the catalog endpoint.
type AlgorithmInfo struct {
	Name     string           `json:"name"`
	Aliases  []string         `json:"aliases,omitempty"`
	Summary  string           `json:"summary"`
	Kind     string           `json:"kind"`
	Seeded     bool             `json:"seeded,omitempty"`
	Weighted   bool             `json:"weighted,omitempty"`
	Workers    bool             `json:"workers,omitempty"`
	Repairable bool             `json:"repairable,omitempty"`
	Params     []AlgorithmParam `json:"params,omitempty"`
}

// AlgorithmParam documents one declared parameter.
type AlgorithmParam struct {
	Key     string `json:"key"`
	Default string `json:"default"`
	Doc     string `json:"doc"`
	NoCache bool   `json:"no_cache,omitempty"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// WireDelta is one replicated store mutation on the wire: the delta plus
// the fingerprint the owner's chain reached after applying it (replicas
// re-derive the link and refuse the entry on mismatch).
type WireDelta struct {
	Op          byte   `json:"op"`
	U           int32  `json:"u"`
	V           int32  `json:"v"`
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
}

func wireDeltas(entries []store.DeltaEntry) []WireDelta {
	out := make([]WireDelta, len(entries))
	for i, e := range entries {
		out[i] = WireDelta{
			Op: byte(e.Op), U: e.U, V: e.V, Epoch: e.Epoch,
			Fingerprint: e.Fingerprint.String(),
		}
	}
	return out
}

func (d WireDelta) toStore() (store.DeltaEntry, error) {
	fp, err := graphio.ParseFingerprint(d.Fingerprint)
	if err != nil {
		return store.DeltaEntry{}, err
	}
	return store.DeltaEntry{Op: store.Op(d.Op), U: d.U, V: d.V, Epoch: d.Epoch, Fingerprint: fp}, nil
}

// ReplicateRequest ships owner deltas to a replica (POST
// /v1/graphs/{id}/deltas). Entries must be consecutive epochs extending the
// replica's current position.
type ReplicateRequest struct {
	Entries []WireDelta `json:"entries"`
}

// ReplicateResponse reports the replica's position after an apply attempt.
// On a refused entry the response carries a non-2xx status (409 for an
// epoch gap, 422 for divergence) with Applied counting the prefix that did
// apply and Error naming the first refusal.
type ReplicateResponse struct {
	Applied     int    `json:"applied"`
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	M           int    `json:"m"`
	Error       string `json:"error,omitempty"`
}

// DeltasResponse is the owner-side delta export (GET
// /v1/graphs/{id}/deltas?since=E). Resync=true means the cursor fell
// outside the pending window (compaction folded it away): the caller must
// reposition from a checkpoint (GET export) instead of streaming.
type DeltasResponse struct {
	Since       uint64      `json:"since"`
	Epoch       uint64      `json:"epoch"`
	Fingerprint string      `json:"fingerprint"`
	Resync      bool        `json:"resync,omitempty"`
	Entries     []WireDelta `json:"entries,omitempty"`
}
