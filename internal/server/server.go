// Package server is the HTTP/JSON serving layer over the sharded
// decomposition engine: the network boundary that turns the in-process
// request API of internal/engine into a service real clients can connect
// to. Every algorithm in the registry (internal/algo) is invocable over
// HTTP against uploaded, generated, or mutated graphs, with per-request
// deadlines mapped onto context cancellation so a disconnected client
// cancels its compute through the same plumbing as an expired deadline.
//
// Endpoints (all request and response bodies are JSON unless noted):
//
//	POST   /v1/graphs              upload a graph (raw body in a graphio
//	                               format, ?format=el|dimacs|metis[.gz])
//	                               or generate one (JSON {family,n,seed})
//	GET    /v1/graphs              list served graphs
//	GET    /v1/graphs/{id}         one graph's info (n, m, fingerprint,
//	                               epoch, pending deltas, ...)
//	DELETE /v1/graphs/{id}         stop serving a graph
//	POST   /v1/graphs/{id}/run     run a registry algorithm: {algo, params,
//	                               q, timeout_ms}
//	POST   /v1/graphs/{id}/query   cluster / ball point queries
//	POST   /v1/graphs/{id}/addedge {u, v} edge insertion
//	POST   /v1/graphs/{id}/deledge {u, v} edge deletion
//	POST   /v1/graphs/{id}/compact fold the delta overlay into a fresh CSR
//	POST   /v1/graphs/{id}/batch   NDJSON stream of run requests in,
//	                               NDJSON stream of results out
//	GET    /v1/algorithms          the registry catalog with parameter docs
//	GET    /healthz                liveness (503 while draining)
//	GET    /metrics                engine / store / server / runtime metrics
//	                               (Prometheus text exposition, version
//	                               0.0.4: # HELP / # TYPE per family,
//	                               latency histograms with le in seconds)
//	GET    /debug/traces           recent finished request traces (JSON,
//	                               newest first, ?n= bounds the count)
//	GET    /debug/pprof/*          the standard net/http/pprof handlers
//	                               (profile, heap, goroutine, trace, ...)
//
// Every request is classified into a fixed endpoint label set, timed into a
// per-endpoint latency histogram, and counted per (endpoint, status). When
// the server is constructed with a Tracer, each admitted /v1 request carries
// a trace through the engine and algorithm layers, so /debug/traces and the
// slow-query log show per-phase latency breakdowns.
//
// Graphs are always served through a versioned store (internal/store), so
// the mutation endpoints give a graph a new snapshot identity in O(1) and
// in-flight runs keep the version they resolved; results stamp the snapshot
// fingerprint they were computed against.
//
// Overload and shutdown are first-class: a bounded-concurrency admission
// gate sheds load with 503 + Retry-After instead of piling goroutines, and
// Drain stops admitting new requests while letting in-flight ones finish,
// so a deploy never truncates a response mid-stream.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// Options configures a Server.
type Options struct {
	// MaxInflight bounds concurrently admitted /v1 requests; excess
	// requests are rejected with 503 + Retry-After rather than queued.
	// <= 0 means the default (64).
	MaxInflight int
	// MaxBodyBytes bounds request bodies — and, for gzip-compressed
	// uploads, the decompressed stream as well, so a small compressed
	// bomb cannot expand without limit. <= 0 means the default (64 MiB).
	MaxBodyBytes int64
	// MaxGenerateVertices bounds server-side graph generation (a remote
	// client must not be able to request a multi-gigabyte allocation with
	// a ten-byte JSON body). <= 0 means the default (2,000,000).
	MaxGenerateVertices int
	// DefaultTimeout applies to run/query/batch requests that do not carry
	// their own timeout_ms. 0 means no server-imposed deadline.
	DefaultTimeout time.Duration
	// Tracer, if set, traces every admitted /v1 request: the request
	// context carries an obs.Trace through the engine and algorithm
	// layers, /debug/traces serves the recent ring, and the tracer's slow
	// log (if configured) receives threshold-crossing requests. Nil
	// disables tracing; per-endpoint histograms still record.
	Tracer *obs.Tracer
}

func (o Options) maxInflight() int {
	if o.MaxInflight <= 0 {
		return 64
	}
	return o.MaxInflight
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 64 << 20
	}
	return o.MaxBodyBytes
}

func (o Options) maxGenerateVertices() int {
	if o.MaxGenerateVertices <= 0 {
		return 2_000_000
	}
	return o.MaxGenerateVertices
}

// servedGraph is one graph under service: a mutable store plus its engine
// handle.
type servedGraph struct {
	id      string
	st      *store.Store
	h       engine.StoreHandle
	created time.Time
}

// drainGate tracks in-flight admitted requests and the draining state
// without the Add-during-Wait hazard of a bare WaitGroup: enter refuses new
// work once draining, and the last exit signals idleness.
type drainGate struct {
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{} // closed once draining && inflight == 0
}

func newDrainGate() *drainGate {
	return &drainGate{idle: make(chan struct{})}
}

// enter admits one request unless the gate is draining.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

// exit retires one admitted request.
func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
}

// drain flips the gate to draining and returns the idle channel.
func (g *drainGate) drain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
	return g.idle
}

func (g *drainGate) stats() (inflight int, draining bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.draining
}

// Server serves the engine over HTTP. Construct with New; a Server is an
// http.Handler, safe for concurrent use.
type Server struct {
	e    *engine.Engine
	opts Options
	mux  *http.ServeMux

	sem  chan struct{} // admission slots
	gate *drainGate

	admitted atomic.Uint64 // /v1 requests admitted past the gate
	shed     atomic.Uint64 // /v1 requests rejected 503 (overload or drain)

	// Replication plane counters (see replication.go): deltas this node
	// served to replicas, deltas it applied as a replica, and checkpoint
	// installs (resyncs) it accepted.
	deltasServed  atomic.Uint64
	deltasApplied atomic.Uint64
	installs      atomic.Uint64

	// replaying is the boot-time readiness latch: while set, /healthz
	// reports "replaying" (503) and /v1 requests are shed, so a load
	// balancer never routes traffic to a process still recovering its
	// stores from checkpoint + WAL.
	replaying atomic.Bool

	// httpm holds per-endpoint latency histograms and per-(endpoint,
	// status) counters; tracer (possibly nil) mints per-request traces.
	httpm  *httpMetrics
	tracer *obs.Tracer

	start time.Time

	mu     sync.Mutex
	graphs map[string]*servedGraph
	seq    uint64
}

// New wraps e in an HTTP serving layer. e may be shared with in-process
// callers (they see the same cache).
func New(e *engine.Engine, opts Options) *Server {
	s := &Server{
		e:      e,
		opts:   opts,
		mux:    http.NewServeMux(),
		sem:    make(chan struct{}, opts.maxInflight()),
		gate:   newDrainGate(),
		httpm:  newHTTPMetrics(),
		tracer: opts.Tracer,
		start:  time.Now(),
		graphs: make(map[string]*servedGraph),
	}
	s.routes()
	return s
}

// Engine returns the underlying engine (shared; e.g. for stats assertions).
func (s *Server) Engine() *engine.Engine { return s.e }

// AddGraph puts g under service through a fresh memory-only store and
// returns its graph id. The upload/generate endpoints use this path.
func (s *Server) AddGraph(g *graph.Graph) (string, engine.StoreHandle) {
	return s.AddStore(store.New(g))
}

// AddStore puts an existing store under service — the path cmd/serve uses
// for durable stores it created or recovered, so the serving layer never
// needs to know how the store came to be.
func (s *Server) AddStore(st *store.Store) (string, engine.StoreHandle) {
	h := s.e.RegisterStore(st)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("g%d", s.seq)
	s.graphs[id] = &servedGraph{id: id, st: st, h: h, created: time.Now()}
	return id, h
}

// SetReplaying flips the boot-time readiness latch (see Server.replaying).
func (s *Server) SetReplaying(v bool) { s.replaying.Store(v) }

// Replaying reports whether the server is still recovering state.
func (s *Server) Replaying() bool { return s.replaying.Load() }

// graphByID resolves a served graph.
func (s *Server) graphByID(id string) (*servedGraph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sg, ok := s.graphs[id]
	return sg, ok
}

// removeGraph stops serving id; cached results for its snapshots age out of
// the engine LRU.
func (s *Server) removeGraph(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[id]; !ok {
		return false
	}
	delete(s.graphs, id)
	return true
}

// graphList returns the served graphs sorted by id sequence.
func (s *Server) graphList() []*servedGraph {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*servedGraph, 0, len(s.graphs))
	for _, sg := range s.graphs {
		out = append(out, sg)
	}
	return out
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	_, d := s.gate.stats()
	return d
}

// Drain stops admitting new /v1 requests (they get 503) and waits until
// every in-flight request has finished, or ctx expires. It is safe to call
// more than once; after the first call the server never admits again.
//
// Before returning — idle or interrupted — Drain persists durable state:
// every durable store's WAL is fsynced and its hottest cache keys are
// written next to its checkpoint, so the next boot recovers the exact
// acknowledged state and prewarms the results this process was serving.
func (s *Server) Drain(ctx context.Context) error {
	idle := s.gate.drain()
	var drainErr error
	select {
	case <-idle:
	case <-ctx.Done():
		inflight, _ := s.gate.stats()
		drainErr = fmt.Errorf("server: drain interrupted with %d requests in flight: %w", inflight, ctx.Err())
	}
	return errors.Join(drainErr, s.persistDurable())
}

// maxHotKeys bounds the persisted hot-key list per graph: enough to warm
// the working set, small enough that prewarming never dominates boot.
const maxHotKeys = 64

// hotKeysFileName lives inside each durable store's directory; the store's
// own recovery ignores it (it only owns manifest/checkpoint/WAL files).
const hotKeysFileName = "hotkeys.json"

// persistDurable syncs and snapshots serving state for every durable graph.
// Best-effort across graphs: one failing store does not stop the others;
// all failures are joined into the returned error.
func (s *Server) persistDurable() error {
	var errs []error
	for _, sg := range s.graphList() {
		dir := sg.st.Dir()
		if dir == "" {
			continue
		}
		if err := sg.st.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("graph %s: sync: %w", sg.id, err))
		}
		fp := sg.st.Fingerprint()
		keys := s.e.HotKeys(fp, maxHotKeys)
		if len(keys) == 0 {
			continue // keep any previous list rather than erasing it
		}
		if err := engine.SaveHotKeys(filepath.Join(dir, hotKeysFileName), fp, keys); err != nil {
			errs = append(errs, fmt.Errorf("graph %s: hot keys: %w", sg.id, err))
		}
	}
	return errors.Join(errs...)
}

// Prewarm replays each durable graph's persisted hot-key list through the
// engine, so a restarted server answers its previous working set from
// cache. Missing or unreadable lists are skipped (prewarming is always
// best-effort); only a dead context aborts. Returns how many keys were
// warmed across all graphs.
func (s *Server) Prewarm(ctx context.Context) (int, error) {
	total := 0
	for _, sg := range s.graphList() {
		dir := sg.st.Dir()
		if dir == "" {
			continue
		}
		keys, _, err := engine.LoadHotKeys(filepath.Join(dir, hotKeysFileName))
		if err != nil {
			continue
		}
		n, err := s.e.Prewarm(ctx, sg.h, keys)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ServeHTTP implements http.Handler: health, metrics, and the debug
// endpoints bypass admission (they must stay observable under overload and
// during drain); everything else passes the drain check and the
// bounded-concurrency gate. Every request — admitted or shed — is timed
// into its endpoint's latency histogram and counted by terminal status.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	endpoint := classifyEndpoint(r)
	sw := &statusWriter{ResponseWriter: w}
	t0 := time.Now()
	defer func() {
		s.httpm.observe(endpoint, sw.status(), time.Since(t0))
	}()
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/") {
		s.mux.ServeHTTP(sw, r)
		return
	}
	if s.replaying.Load() {
		s.shed.Add(1)
		sw.Header().Set("Retry-After", "1")
		writeError(sw, http.StatusServiceUnavailable, "server starting: recovery in progress")
		return
	}
	if !s.gate.enter() {
		s.shed.Add(1)
		writeError(sw, http.StatusServiceUnavailable, "server draining")
		return
	}
	defer s.gate.exit()
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		sw.Header().Set("Retry-After", "1")
		writeError(sw, http.StatusServiceUnavailable,
			fmt.Sprintf("overloaded: %d requests already in flight", cap(s.sem)))
		return
	}
	defer func() { <-s.sem }()
	s.admitted.Add(1)
	r.Body = http.MaxBytesReader(sw, r.Body, s.opts.maxBodyBytes())
	if s.tracer != nil {
		ctx, tr := s.tracer.Start(r.Context(), endpoint)
		r = r.WithContext(ctx)
		defer func() { tr.Finish(sw.status()) }()
	}
	s.mux.ServeHTTP(sw, r)
}
