package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/store"
)

// equivParams picks one deterministic parameter set per registry algorithm:
// defaults plus a fixed seed, with the GKM horizon pinned to the experiment
// scale (paper constants dwarf test-sized graphs).
func equivParams(spec *algo.Spec) algo.Params {
	p := algo.Params{}
	if spec.Has("seed") {
		p["seed"] = "2"
	}
	if spec.Name == "gkm" {
		p["scale"] = "0.4"
	}
	return p
}

// realSpecs returns the registry without test-only entries other test files
// in this binary may have registered.
func realSpecs(t *testing.T) []*algo.Spec {
	t.Helper()
	var out []*algo.Spec
	for _, spec := range algo.All() {
		if strings.HasPrefix(spec.Name, "servertest-") || strings.HasPrefix(spec.Name, "enginetest-") {
			continue
		}
		out = append(out, spec)
	}
	if len(out) < 10 {
		t.Fatalf("registry suspiciously small: %d specs", len(out))
	}
	return out
}

// normalize re-encodes a wire result with the wall-clock field zeroed; the
// resulting bytes are the equivalence currency. Everything else — cluster
// assignments, metrics, rounds, cache key, snapshot stamp — must survive
// the HTTP round trip bit-for-bit.
func normalize(t *testing.T, r *Result) []byte {
	t.Helper()
	cp := *r
	cp.ElapsedNS = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestHTTPEquivalence pins the end-to-end contract of the serving layer:
// for every registry algorithm, the result served over HTTP is bit-identical
// (modulo wall time) to a direct Engine.Run against a separately constructed
// engine and store holding the same graph — including the Result.Snapshot
// stamp, before and after mutations, and after compaction.
func TestHTTPEquivalence(t *testing.T) {
	const (
		family = "gnp"
		n      = 110
		seed   = 7
	)
	srv := New(engine.New(engine.Options{}), Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	info, err := c.Generate(ctx, family, n, seed)
	if err != nil {
		t.Fatal(err)
	}

	// The direct side builds everything independently: same topology, its
	// own store, its own engine. Only the bytes may agree.
	g, err := gen.Family(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	directStore := store.New(g)
	directEngine := engine.New(engine.Options{})
	directHandle := directEngine.RegisterStore(directStore)
	if fp := directStore.Snapshot().Fingerprint().String(); fp != info.Fingerprint {
		t.Fatalf("fingerprints diverge before any request: %s vs %s", fp, info.Fingerprint)
	}

	check := func(t *testing.T, spec *algo.Spec, params algo.Params) {
		t.Helper()
		httpRes, err := c.Run(ctx, info.ID, RunRequest{Algo: spec.Name, Params: params})
		if err != nil {
			t.Fatalf("HTTP run: %v", err)
		}
		directRes, err := directEngine.Run(ctx, directHandle, spec.Name, params)
		if err != nil {
			t.Fatalf("direct run: %v", err)
		}
		want := normalize(t, WireResult(directRes))
		got := normalize(t, httpRes)
		if !bytes.Equal(got, want) {
			t.Fatalf("HTTP and direct results differ:\n http: %s\ndirect: %s", got, want)
		}
		if httpRes.Snapshot == "" {
			t.Fatal("store-backed result missing its snapshot stamp")
		}
		if wantFP := directStore.Snapshot().Fingerprint().String(); httpRes.Snapshot != wantFP {
			t.Fatalf("snapshot stamp %s, want %s", httpRes.Snapshot, wantFP)
		}
	}

	for _, spec := range realSpecs(t) {
		t.Run(spec.Name, func(t *testing.T) { check(t, spec, equivParams(spec)) })
	}

	// Mutations: the same edits through HTTP and directly must keep the two
	// sides in lockstep — incremental fingerprint chain included — and the
	// equivalence must hold against the mutated (overlay-backed) snapshot.
	t.Run("after-mutation", func(t *testing.T) {
		edits := [][2]int{{0, 13}, {1, 44}, {2, 71}}
		for _, e := range edits {
			if _, err := c.AddEdge(ctx, info.ID, e[0], e[1]); err != nil {
				t.Fatal(err)
			}
			directStore.AddEdge(e[0], e[1])
		}
		if _, err := c.DeleteEdge(ctx, info.ID, 0, 13); err != nil {
			t.Fatal(err)
		}
		directStore.DeleteEdge(0, 13)
		mutated, err := c.GraphInfo(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fp := directStore.Snapshot().Fingerprint().String(); fp != mutated.Fingerprint {
			t.Fatalf("incremental fingerprints diverge: %s vs %s", fp, mutated.Fingerprint)
		}
		spec, _ := algo.Get("changli")
		check(t, spec, equivParams(spec))
	})

	t.Run("after-compact", func(t *testing.T) {
		if _, err := c.Compact(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
		directStore.Compact()
		for _, name := range []string{"changli", "sparsecover"} {
			spec, _ := algo.Get(name)
			check(t, spec, equivParams(spec))
		}
	})
}

// TestBatchEquivalence runs every registry algorithm through one NDJSON
// batch stream and checks each line against the direct engine.
func TestBatchEquivalence(t *testing.T) {
	srv := New(engine.New(engine.Options{}), Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	info, err := c.Generate(ctx, "regular", 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Family("regular", 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	directEngine := engine.New(engine.Options{})
	directHandle := directEngine.RegisterStore(store.New(g))

	specs := realSpecs(t)
	reqs := make([]RunRequest, len(specs))
	for i, spec := range specs {
		reqs[i] = RunRequest{Algo: spec.Name, Params: equivParams(spec)}
	}
	lines, err := c.Batch(ctx, info.ID, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(lines) != len(specs) {
		t.Fatalf("want %d lines, got %d", len(specs), len(lines))
	}
	for i, line := range lines {
		if line.Error != "" || line.Result == nil {
			t.Fatalf("line %d (%s): %s", i, specs[i].Name, line.Error)
		}
		directRes, err := directEngine.Run(ctx, directHandle, specs[i].Name, equivParams(specs[i]))
		if err != nil {
			t.Fatalf("direct %s: %v", specs[i].Name, err)
		}
		if got, want := normalize(t, line.Result), normalize(t, WireResult(directRes)); !bytes.Equal(got, want) {
			t.Fatalf("%s batch line differs:\n http: %s\ndirect: %s", specs[i].Name, got, want)
		}
	}
}
