package server

import (
	"context"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/xrand"
)

// churnClient drives one closed-loop HTTP client mixing algorithm runs,
// point queries, and store mutations against graph id; every error other
// than an expected shed/timeout is fatal to the test.
func churnClient(t *testing.T, c *Client, id string, n, ops int, rng *xrand.RNG) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < ops; i++ {
		switch roll := rng.Intn(20); {
		case roll < 3: // mutate: insert
			if _, err := c.AddEdge(ctx, id, rng.Intn(n), rng.Intn(n)); err != nil && !IsStatus(err, 400) {
				t.Errorf("addedge: %v", err)
				return
			}
		case roll < 5: // mutate: delete (random pair; usually a no-op)
			if _, err := c.DeleteEdge(ctx, id, rng.Intn(n), rng.Intn(n)); err != nil && !IsStatus(err, 400) {
				t.Errorf("deledge: %v", err)
				return
			}
		case roll < 6: // compact
			if _, err := c.Compact(ctx, id); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		case roll < 11: // decomposition run over a tiny seed space
			rq := RunRequest{Algo: "changli", Params: map[string]string{"seed": strconv.Itoa(rng.Intn(2))}}
			if _, err := c.Run(ctx, id, rq); err != nil {
				t.Errorf("run: %v", err)
				return
			}
		case roll < 13: // a second family keeps several key shapes in play
			rq := RunRequest{Algo: "sparsecover", Params: map[string]string{"seed": strconv.Itoa(rng.Intn(2))}}
			if _, err := c.Run(ctx, id, rq); err != nil {
				t.Errorf("run cover: %v", err)
				return
			}
		case roll < 17: // cluster point query
			qr := QueryRequest{Op: "cluster", Vertices: []int32{int32(rng.Intn(n))}, Seed: uint64(1 + rng.Intn(2))}
			if _, err := c.Query(ctx, id, qr); err != nil {
				t.Errorf("cluster query: %v", err)
				return
			}
		default: // ball point query
			qr := QueryRequest{Op: "ball", Vertices: []int32{int32(rng.Intn(n))}, Radius: 1 + rng.Intn(3)}
			if _, err := c.Query(ctx, id, qr); err != nil {
				t.Errorf("ball query: %v", err)
				return
			}
		}
	}
}

// checkQuiesced asserts the invariants the issue pins after a churn run
// drains: no dangling inflight computations anywhere, consistent store
// accounting, and a server still healthy enough to compact and serve.
func checkQuiesced(t *testing.T, srv *Server, c *Client, id string) {
	t.Helper()
	ctx := context.Background()
	est := srv.Engine().Stats()
	if n := est.InflightTotal(); n != 0 {
		t.Fatalf("%d dangling inflight entries after drain: %+v", n, est.Shards)
	}
	if inflight, _ := srv.gate.stats(); inflight != 0 {
		t.Fatalf("%d requests still admitted after drain", inflight)
	}
	if est.Misses != est.Computations {
		// Retries after cancelled initiators can push Computations past
		// Misses; with no cancellations in this workload they must agree.
		if est.Cancellations == 0 {
			t.Fatalf("misses %d != computations %d with zero cancellations", est.Misses, est.Computations)
		}
	}
	info, err := c.GraphInfo(ctx, id)
	if err != nil {
		t.Fatalf("post-drain info: %v", err)
	}
	if info.Epoch != info.Adds+info.Dels {
		t.Fatalf("epoch %d != adds %d + dels %d", info.Epoch, info.Adds, info.Dels)
	}
	// Compact revalidates the whole overlay against the CSR invariants (it
	// panics on drift), so a clean compact is a deep consistency check.
	if _, err := c.Compact(ctx, id); err != nil {
		t.Fatalf("post-drain compact: %v", err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("post-drain healthz: %v", err)
	}
}

// TestHTTPConcurrentChurn is the race-suite version of the churn workload:
// 8 HTTP clients mixing queries, addedge/deledge, and compact against one
// store-backed graph, then a full quiescence check.
func TestHTTPConcurrentChurn(t *testing.T) {
	const (
		clients = 8
		ops     = 25
		n       = 150
	)
	srv, c := newTestServer(t, Options{})
	info, err := c.Generate(context.Background(), "gnp", n, 11)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			churnClient(t, c, info.ID, n, ops, xrand.Stream(29, cl, 0xc4a2))
		}(cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkQuiesced(t, srv, c, info.ID)
}

// TestHTTPChurnSoak is the heavy loopback soak behind CI's dedicated -race
// step (skipped under -short so that step is its only run): a real TCP
// server, 8 churning clients, then a barrage of deadline-doomed requests
// that must all cancel through the engine without leaking goroutines.
func TestHTTPChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy HTTP soak; runs in the dedicated race step")
	}
	const (
		clients = 8
		ops     = 120
		n       = 220
	)
	e := engine.New(engine.Options{Capacity: 16}) // tight cache forces eviction churn
	srv := New(e, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	info, err := c.Generate(ctx, "gnp", n, 23)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			churnClient(t, c, info.ID, n, ops, xrand.Stream(31, cl, 0x50a2))
		}(cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkQuiesced(t, srv, c, info.ID)

	// Cancellation under load: requests against never-released blocking
	// gates can only end through their deadline, so every one must come
	// back 504 and count as an engine cancellation (the same code path a
	// disconnected client takes; TestClientDisconnectCancelsCompute pins
	// the disconnect side).
	registerBlockingSpec()
	const doomed = 16
	before := e.Stats().Cancellations
	var dwg sync.WaitGroup
	errs := make([]error, doomed)
	for i := 0; i < doomed; i++ {
		id := "soak-doomed-" + strconv.Itoa(i)
		gateFor(id) // registered, never released
		dwg.Add(1)
		go func(i int, id string) {
			defer dwg.Done()
			_, errs[i] = c.Run(ctx, info.ID, RunRequest{
				Algo: "servertest-block", Params: map[string]string{"id": id}, TimeoutMS: 5,
			})
		}(i, id)
	}
	dwg.Wait()
	for i, err := range errs {
		if !IsStatus(err, 504) {
			t.Fatalf("doomed run %d: want 504, got %v", i, err)
		}
	}
	if after := e.Stats().Cancellations; after < before+doomed {
		t.Fatalf("cancellations %d -> %d, want at least +%d", before, after, doomed)
	}
	if n := e.Stats().InflightTotal(); n != 0 {
		t.Fatalf("%d dangling inflight entries after cancellations", n)
	}

	// Drain and verify the goroutine count returns to the neighborhood of
	// the baseline (cancelled computations and keep-alive conns wind down).
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+8 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d vs baseline %d\n%s",
				g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The drained server still answers observability probes with final,
	// consistent numbers.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics after drain: %v", err)
	}
	for _, want := range []string{"repro_server_draining 1", "repro_engine_inflight_computations 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q after drain", want)
		}
	}
}
