package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
)

// newTestServer spins an httptest server over a fresh engine.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(engine.New(engine.Options{}), opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL, ts.Client())
}

// --- blocking test-only registry spec --------------------------------------
//
// servertest-block handshakes with tests through per-id gates: a request
// with id=X signals gateFor("X").started and then waits for release (or its
// context). Requests whose id has no registered gate return immediately, so
// stray invocations (fuzzing) cannot hang.

var (
	blockOnce  sync.Once
	blockGates sync.Map // id -> *blockGate
)

type blockGate struct {
	startOnce sync.Once
	started   chan struct{}
	release   chan struct{}
}

func gateFor(id string) *blockGate {
	g := &blockGate{started: make(chan struct{}), release: make(chan struct{})}
	blockGates.Store(id, g)
	return g
}

func registerBlockingSpec() {
	blockOnce.Do(func() {
		algo.Register(&algo.Spec{
			Name:    "servertest-block",
			Summary: "test-only: blocks until released or cancelled",
			Caps:    algo.Capabilities{Kind: algo.KindDecomposition},
			Defs: []algo.ParamDef{
				{Key: "id", Kind: algo.String, Default: "", Doc: "gate id"},
			},
			Run: func(ctx context.Context, g *graph.Graph, p algo.Params) (*algo.Result, error) {
				if v, ok := blockGates.Load(p["id"]); ok {
					gate := v.(*blockGate)
					gate.startOnce.Do(func() { close(gate.started) })
					select {
					case <-gate.release:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				return &algo.Result{ClusterOf: make([]int32, g.N()), NumClusters: 1}, nil
			},
		})
	})
}

func TestGraphLifecycle(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()

	info, err := c.Generate(ctx, "cycle", 64, 1)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if info.ID != "g1" || info.N != 64 || info.M != 64 {
		t.Fatalf("unexpected info %+v", info)
	}
	want := graphio.FingerprintOf(gen.Cycle(64)).String()
	if info.Fingerprint != want {
		t.Fatalf("fingerprint %s, want %s", info.Fingerprint, want)
	}

	list, err := c.Graphs(ctx)
	if err != nil || len(list) != 1 || list[0].ID != "g1" {
		t.Fatalf("list: %v %+v", err, list)
	}
	got, err := c.GraphInfo(ctx, "g1")
	if err != nil || got.Fingerprint != want {
		t.Fatalf("info: %v %+v", err, got)
	}
	if err := c.DeleteGraph(ctx, "g1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.GraphInfo(ctx, "g1"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("want 404 after delete, got %v", err)
	}
	if err := c.DeleteGraph(ctx, "g1"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("double delete: want 404, got %v", err)
	}
	if _, err := c.Generate(ctx, "mobius", 64, 1); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown family: want 400, got %v", err)
	}
}

func TestUploadAllFormats(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	g := gen.Grid(9, 9)
	want := graphio.FingerprintOf(g).String()

	for _, tc := range []struct {
		format string
		f      graphio.Format
		gz     bool
	}{
		{"el", graphio.EdgeList, false},
		{"edges", graphio.EdgeList, false},
		{"dimacs", graphio.DIMACS, false},
		{"metis", graphio.METIS, false},
		{"el.gz", graphio.EdgeList, true},
		{"metis.gz", graphio.METIS, true},
	} {
		var buf bytes.Buffer
		if tc.gz {
			zw := gzip.NewWriter(&buf)
			if err := graphio.Write(zw, tc.f, g); err != nil {
				t.Fatal(err)
			}
			zw.Close()
		} else if err := graphio.Write(&buf, tc.f, g); err != nil {
			t.Fatal(err)
		}
		info, err := c.Upload(ctx, tc.format, &buf)
		if err != nil {
			t.Fatalf("%s: upload: %v", tc.format, err)
		}
		if info.Fingerprint != want {
			t.Fatalf("%s: fingerprint %s, want %s", tc.format, info.Fingerprint, want)
		}
	}

	// Malformed bytes and unknown formats are 400s.
	if _, err := c.Upload(ctx, "el", strings.NewReader("not a graph\n")); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("malformed upload: want 400, got %v", err)
	}
	if _, err := c.Upload(ctx, "xlsx", strings.NewReader("")); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown format: want 400, got %v", err)
	}
	resp, err := http.Post(c.base+"/v1/graphs", "application/octet-stream", strings.NewReader("1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing ?format=: want 400, got %d", resp.StatusCode)
	}
}

func TestRunEndpoint(t *testing.T) {
	srv, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "gnp", 100, 3)
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.Run(ctx, info.ID, RunRequest{Algo: "changli", Params: map[string]string{"eps": "0.3", "seed": "2"}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Algorithm != "changli" || len(res.ClusterOf) != 100 || res.Snapshot != info.Fingerprint {
		t.Fatalf("unexpected result %q %d %q", res.Algorithm, len(res.ClusterOf), res.Snapshot)
	}
	// The q-form parameter bag and an alias hit the same cache slot.
	res2, err := c.Run(ctx, info.ID, RunRequest{Algo: "chang-li", Q: "eps=0.30 seed=2"})
	if err != nil {
		t.Fatalf("run q-form: %v", err)
	}
	if res2.Key != res.Key {
		t.Fatalf("cache keys differ: %q vs %q", res2.Key, res.Key)
	}
	if st := srv.Engine().Stats(); st.Hits == 0 {
		t.Fatalf("expected a cache hit, stats %+v", st)
	}

	for name, rq := range map[string]RunRequest{
		"unknown-algo": {Algo: "quantum"},
		"missing-algo": {},
		"unknown-key":  {Algo: "changli", Params: map[string]string{"epz": "0.3"}},
		"bad-value":    {Algo: "changli", Params: map[string]string{"eps": "zero"}},
		"empty-value":  {Algo: "changli", Q: "eps="},
		"dup-key":      {Algo: "changli", Params: map[string]string{"eps": "0.3"}, Q: "eps=0.4"},
		"neg-timeout":  {Algo: "changli", TimeoutMS: -5},
	} {
		if _, err := c.Run(ctx, info.ID, rq); !IsStatus(err, http.StatusBadRequest) {
			t.Errorf("%s: want 400, got %v", name, err)
		}
	}
	if _, err := c.Run(ctx, "g99", RunRequest{Algo: "changli"}); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("missing graph: want 404, got %v", err)
	}
	// Semantically invalid parameter values the decoder cannot see are 422.
	if _, err := c.Run(ctx, info.ID, RunRequest{Algo: "solve", Params: map[string]string{"problem": "nope"}}); !IsStatus(err, http.StatusUnprocessableEntity) {
		t.Fatalf("bad problem: want 422, got %v", err)
	}
}

func TestRunRejectsMalformedJSON(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"not-json":      "run changli please",
		"trailing":      `{"algo":"changli"} extra`,
		"unknown-field": `{"algo":"changli","bogus":1}`,
		"wrong-type":    `{"algo":42}`,
		"empty":         "",
	} {
		resp, err := http.Post(c.base+"/v1/graphs/"+info.ID+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, resp.StatusCode)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "grid", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	qres, err := c.Query(ctx, info.ID, QueryRequest{Op: "cluster", Vertices: []int32{0, 5, 17}})
	if err != nil {
		t.Fatalf("cluster query: %v", err)
	}
	if len(qres.Clusters) != 3 || qres.Snapshot != info.Fingerprint {
		t.Fatalf("unexpected cluster response %+v", qres)
	}
	bres, err := c.Query(ctx, info.ID, QueryRequest{Op: "ball", Vertices: []int32{17}, Radius: 1})
	if err != nil {
		t.Fatalf("ball query: %v", err)
	}
	// Vertex 17 of the 10x10 grid is interior: itself plus 4 neighbors.
	if len(bres.Balls) != 1 || len(bres.Balls[0]) != 5 {
		t.Fatalf("unexpected ball %v", bres.Balls)
	}
	for name, qr := range map[string]QueryRequest{
		"no-vertices": {Op: "cluster"},
		"bad-op":      {Op: "frob", Vertices: []int32{1}},
		"neg-radius":  {Op: "ball", Vertices: []int32{1}, Radius: -1},
	} {
		if _, err := c.Query(ctx, info.ID, qr); !IsStatus(err, http.StatusBadRequest) {
			t.Errorf("%s: want 400, got %v", name, err)
		}
	}
	if _, err := c.Query(ctx, info.ID, QueryRequest{Op: "ball", Vertices: []int32{-4}}); !IsStatus(err, http.StatusUnprocessableEntity) {
		t.Errorf("out-of-range vertex: want 422, got %v", err)
	}
}

func TestMutationEndpoints(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID

	mres, err := c.AddEdge(ctx, id, 0, 25)
	if err != nil || !mres.Applied || mres.Epoch != 1 || mres.M != 51 {
		t.Fatalf("addedge: %v %+v", err, mres)
	}
	if mres.Fingerprint == info.Fingerprint {
		t.Fatal("mutation did not change the fingerprint")
	}
	if dup, err := c.AddEdge(ctx, id, 25, 0); err != nil || dup.Applied || dup.Epoch != 1 {
		t.Fatalf("duplicate addedge: %v %+v", err, dup)
	}
	if _, err := c.AddEdge(ctx, id, 3, 3); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("self-loop: want 400, got %v", err)
	}
	if _, err := c.AddEdge(ctx, id, 3, 5000); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("out of range: want 400, got %v", err)
	}
	if del, err := c.DeleteEdge(ctx, id, 0, 1); err != nil || !del.Applied || del.M != 50 {
		t.Fatalf("deledge: %v %+v", err, del)
	}
	if gone, err := c.DeleteEdge(ctx, id, 0, 1); err != nil || gone.Applied {
		t.Fatalf("absent deledge: %v %+v", err, gone)
	}

	// Compact folds the overlay and the graph info reflects it.
	cres, err := c.Compact(ctx, id)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	after, err := c.GraphInfo(ctx, id)
	if err != nil || after.PendingDeltas != 0 || after.Compactions != 1 || after.M != 50 {
		t.Fatalf("post-compact info: %v %+v", err, after)
	}
	if cres.Fingerprint != after.Fingerprint {
		t.Fatalf("compact response fingerprint %s != info %s", cres.Fingerprint, after.Fingerprint)
	}
	// A run after mutation is stamped with the mutated snapshot.
	res, err := c.Run(ctx, id, RunRequest{Algo: "changli"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != after.Fingerprint {
		t.Fatalf("run snapshot %s, want %s", res.Snapshot, after.Fingerprint)
	}
}

func TestBatchStream(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := c.Batch(ctx, info.ID, []RunRequest{
		{Algo: "changli", Params: map[string]string{"seed": "1"}},
		{Algo: "bogus"},
		{Algo: "sparsecover", Params: map[string]string{"seed": "2"}},
		{Algo: "changli", Params: map[string]string{"eps": "broken"}},
		{Algo: "changli", Params: map[string]string{"seed": "1"}},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d: %+v", len(lines), lines)
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d", i, l.Index)
		}
	}
	if lines[0].Result == nil || lines[2].Result == nil || lines[4].Result == nil {
		t.Fatalf("expected results on lines 0/2/4: %+v", lines)
	}
	if lines[1].Status != http.StatusBadRequest || lines[3].Status != http.StatusBadRequest {
		t.Fatalf("expected per-line 400s: %+v", lines)
	}
	// Identical requests in one stream share the cache.
	if lines[0].Result.Key != lines[4].Result.Key {
		t.Fatal("batch lines 0 and 4 should share a cache key")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, err := c.Generate(ctx, "cycle", 40, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, "g1", RunRequest{Algo: "changli"}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"repro_engine_hits_total", "repro_engine_misses_total 1", "repro_engine_cancellations_total",
		"repro_engine_shard_entries{shard=\"0\"}", "repro_server_inflight_requests",
		"repro_server_admitted_total", "repro_server_draining 0",
		"repro_graph_vertices{graph=\"g1\"} 40", "repro_graph_epoch{graph=\"g1\"} 0",
		"# TYPE repro_engine_hits_total counter", "# HELP repro_http_request_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAlgorithmsCatalog(t *testing.T) {
	_, c := newTestServer(t, Options{})
	var out []AlgorithmInfo
	if err := c.do(context.Background(), http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		t.Fatalf("catalog: %v", err)
	}
	found := false
	for _, a := range out {
		if a.Name == "changli" {
			found = true
			if a.Kind != "decomposition" || len(a.Params) == 0 {
				t.Fatalf("changli entry %+v", a)
			}
		}
	}
	if !found {
		t.Fatal("catalog missing changli")
	}
}

func TestAdmissionGateSheds(t *testing.T) {
	registerBlockingSpec()
	srv, c := newTestServer(t, Options{MaxInflight: 1})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err) // generate fits: the gate admits one request at a time
	}
	gate := gateFor("admission")
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, info.ID, RunRequest{Algo: "servertest-block", Params: map[string]string{"id": "admission"}})
		done <- err
	}()
	<-gate.started
	// The single admission slot is occupied: everything /v1 sheds with 503,
	// but health and metrics stay observable.
	if _, err := c.GraphInfo(ctx, info.ID); !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("want 503 while saturated, got %v", err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz under overload: %v", err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("metrics under overload: %v", err)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked run: %v", err)
	}
	if shed := srv.shed.Load(); shed == 0 {
		t.Fatal("shed counter did not move")
	}
	// Capacity is released: the next request is admitted again.
	if _, err := c.GraphInfo(ctx, info.ID); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestDrainFinishesInflightAndRejectsNew(t *testing.T) {
	registerBlockingSpec()
	srv, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := gateFor("drain")
	runDone := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, info.ID, RunRequest{Algo: "servertest-block", Params: map[string]string{"id": "drain"}})
		runDone <- err
	}()
	<-gate.started

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(ctx) }()

	// Drain must not complete while the request is in flight.
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned with a request in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New work is rejected; health reports draining.
	if _, err := c.Run(ctx, info.ID, RunRequest{Algo: "changli"}); !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("want 503 while draining, got %v", err)
	}
	if err := c.Healthz(ctx); !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("healthz should report draining, got %v", err)
	}
	// The in-flight request still finishes cleanly.
	close(gate.release)
	if err := <-runDone; err != nil {
		t.Fatalf("in-flight run during drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain is idempotent and instant once idle.
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	registerBlockingSpec()
	srv, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := gateFor("drain-timeout")
	runDone := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, info.ID, RunRequest{Algo: "servertest-block", Params: map[string]string{"id": "drain-timeout"}})
		runDone <- err
	}()
	<-gate.started
	dctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(dctx); err == nil || !strings.Contains(err.Error(), "1 requests in flight") {
		t.Fatalf("want drain timeout naming the stragglers, got %v", err)
	}
	close(gate.release)
	<-runDone
}

func TestDeadlineCancelsCompute(t *testing.T) {
	registerBlockingSpec()
	srv, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	gateFor("deadline") // registered but never released: only ctx can end it
	before := srv.Engine().Stats().Cancellations
	_, err = c.Run(ctx, info.ID, RunRequest{
		Algo: "servertest-block", Params: map[string]string{"id": "deadline"}, TimeoutMS: 40,
	})
	if !IsStatus(err, http.StatusGatewayTimeout) {
		t.Fatalf("want 504, got %v", err)
	}
	if after := srv.Engine().Stats().Cancellations; after != before+1 {
		t.Fatalf("cancellations %d -> %d, want +1", before, after)
	}
	if n := srv.Engine().Stats().InflightTotal(); n != 0 {
		t.Fatalf("%d dangling inflight computations", n)
	}
}

func TestClientDisconnectCancelsCompute(t *testing.T) {
	registerBlockingSpec()
	srv, c := newTestServer(t, Options{})
	ctx := context.Background()
	info, err := c.Generate(ctx, "cycle", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	gate := gateFor("disconnect")
	before := srv.Engine().Stats().Cancellations
	reqCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(reqCtx, info.ID, RunRequest{Algo: "servertest-block", Params: map[string]string{"id": "disconnect"}})
		done <- err
	}()
	<-gate.started
	cancel() // hang up mid-compute
	if err := <-done; err == nil {
		t.Fatal("cancelled client request succeeded")
	}
	// The server notices the disconnect through the request context and the
	// engine counts the cancellation; poll briefly (teardown is async).
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := srv.Engine().Stats()
		if st.Cancellations > before && st.InflightTotal() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never observed the disconnect: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	_, c := newTestServer(t, Options{MaxBodyBytes: 256})
	big := fmt.Sprintf(`{"algo":"changli","q":"%s"}`, strings.Repeat("x", 1024))
	resp, err := http.Post(c.base+"/v1/graphs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: want 400/413, got %d", resp.StatusCode)
	}
}

func TestGenerateVertexBound(t *testing.T) {
	_, c := newTestServer(t, Options{MaxGenerateVertices: 1000})
	ctx := context.Background()
	if _, err := c.Generate(ctx, "cycle", 5000, 1); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("oversized generate: want 400, got %v", err)
	}
	if _, err := c.Generate(ctx, "cycle", 1000, 1); err != nil {
		t.Fatalf("in-bounds generate: %v", err)
	}
	// The default bound blocks a hostile ten-byte request for a
	// multi-gigabyte allocation without allocating anything.
	_, c2 := newTestServer(t, Options{})
	if _, err := c2.Generate(ctx, "cycle", 2_000_000_000, 1); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("default bound: want 400, got %v", err)
	}
}

func TestGzipBombRejected(t *testing.T) {
	_, c := newTestServer(t, Options{MaxBodyBytes: 1 << 16})
	// ~4 MiB of edge-list text compresses to a few KiB: the compressed
	// body passes MaxBytesReader, so only the decompressed bound can stop
	// the expansion.
	var plain bytes.Buffer
	plain.WriteString("1000 1000000\n")
	for i := 0; i < 1_000_000; i++ {
		fmt.Fprintf(&plain, "%d %d\n", i%1000, (i+1)%1000)
	}
	var compressed bytes.Buffer
	zw := gzip.NewWriter(&compressed)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if compressed.Len() > 1<<16 {
		t.Fatalf("test bomb not compact enough: %d compressed bytes", compressed.Len())
	}
	if _, err := c.Upload(context.Background(), "el.gz", &compressed); !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("gzip bomb: want 400, got %v", err)
	}
	// A legitimate gzip upload within the decompressed bound still works.
	var ok bytes.Buffer
	zw = gzip.NewWriter(&ok)
	if err := graphio.Write(zw, graphio.EdgeList, gen.Cycle(64)); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, err := c.Upload(context.Background(), "el.gz", &ok); err != nil {
		t.Fatalf("legitimate gzip upload: %v", err)
	}
}
