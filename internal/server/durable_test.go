package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/store"
	"repro/internal/wal"
)

// getStatus issues a bare GET and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestHealthzThreeStates(t *testing.T) {
	s := New(engine.New(engine.Options{}), Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Boot: replaying — health says so, and /v1 traffic is shed.
	s.SetReplaying(true)
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("replaying healthz = %d, want 503", got)
	}
	if got := getStatus(t, ts.URL+"/v1/graphs"); got != http.StatusServiceUnavailable {
		t.Fatalf("/v1 during replay = %d, want 503", got)
	}
	body := metricsBody(t, ts.URL)
	if !strings.Contains(body, "repro_server_replaying 1") {
		t.Fatal("metrics do not report repro_server_replaying 1 during recovery")
	}

	// Ready.
	s.SetReplaying(false)
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("ready healthz = %d, want 200", got)
	}
	if got := getStatus(t, ts.URL+"/v1/graphs"); got != http.StatusOK {
		t.Fatalf("/v1 when ready = %d, want 200", got)
	}

	// Draining.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", got)
	}
}

func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestDurableGraphLifecycleOverHTTP walks the full durable serving loop:
// serve a durable store, mutate and query it over HTTP, drain (persisting
// WAL + hot keys), then bring up a second server over the recovered store
// and verify it prewarms to cache hits and reports identical state.
func TestDurableGraphLifecycleOverHTTP(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := store.Create(gen.Cycle(64), store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := New(engine.New(engine.Options{}), Options{})
	ts := httptest.NewServer(s)
	c := NewClient(ts.URL, ts.Client())
	id, _ := s.AddStore(st)

	if _, err := c.AddEdge(ctx, id, 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteEdge(ctx, id, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, id, RunRequest{Algo: "changli", Q: "eps=0.3 scale=0.05"}); err != nil {
		t.Fatal(err)
	}
	info, err := c.GraphInfo(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable || info.DeltaBytes != 2*wal.FrameSize || info.Epoch != 2 {
		t.Fatalf("served durable info: %+v", info)
	}
	body := metricsBody(t, ts.URL)
	for _, want := range []string{"repro_graph_durable{graph=\"" + id + "\"} 1", "repro_graph_delta_bytes", "repro_graph_wal_syncs_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if _, err := os.Stat(filepath.Join(dir, "hotkeys.json")); err != nil {
		t.Fatalf("drain did not persist hot keys: %v", err)
	}
	wantFP := st.Fingerprint()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life.
	back, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Fingerprint() != wantFP {
		t.Fatal("recovered store fingerprint drifted")
	}
	s2 := New(engine.New(engine.Options{}), Options{})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	c2 := NewClient(ts2.URL, ts2.Client())
	id2, _ := s2.AddStore(back)
	warmed, err := s2.Prewarm(ctx)
	if err != nil || warmed == 0 {
		t.Fatalf("prewarm: warmed=%d err=%v", warmed, err)
	}
	before := s2.Engine().Stats()
	res, err := c2.Run(ctx, id2, RunRequest{Algo: "changli", Q: "eps=0.3 scale=0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != wantFP.String() {
		t.Fatalf("result stamped %s, want %s", res.Snapshot, wantFP)
	}
	after := s2.Engine().Stats()
	if after.Computations != before.Computations {
		t.Fatal("request after prewarm recomputed instead of hitting cache")
	}
}

func TestEdgeMutationSurfacesWALFailure(t *testing.T) {
	ctx := context.Background()
	inj := (&wal.Injector{}).FailAppend(1)
	st, err := store.Create(gen.Cycle(16), store.Options{Dir: t.TempDir(), Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(engine.New(engine.Options{}), Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	id, _ := s.AddStore(st)

	if _, err := c.AddEdge(ctx, id, 0, 7); err == nil {
		t.Fatal("WAL-failed mutation acknowledged over HTTP")
	} else if !strings.Contains(err.Error(), "mutation rejected") {
		t.Fatalf("error does not name the rejection: %v", err)
	}
	// A true no-op (edge already present) still reports 200 applied=false:
	// the sticky WAL error must not be confused with it — but while the WAL
	// is dead, even no-op probes hit the contains-check first, so use a
	// compact to rotate onto a fresh log, then verify a real no-op.
	if _, err := c.Compact(ctx, id); err != nil {
		t.Fatal(err)
	}
	mr, err := c.AddEdge(ctx, id, 0, 1) // cycle edge, already present
	if err != nil || mr.Applied {
		t.Fatalf("no-op add after recovery: applied=%v err=%v", mr != nil && mr.Applied, err)
	}
}
