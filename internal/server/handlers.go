package server

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/ldd"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("POST /v1/graphs", s.handleCreateGraph)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphInfo)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /v1/graphs/{id}/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/graphs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/graphs/{id}/addedge", s.handleEdge(true))
	s.mux.HandleFunc("POST /v1/graphs/{id}/deledge", s.handleEdge(false))
	s.mux.HandleFunc("POST /v1/graphs/{id}/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/graphs/{id}/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/graphs/{id}/deltas", s.handleDeltasGet)
	s.mux.HandleFunc("POST /v1/graphs/{id}/deltas", s.handleDeltasApply)
	s.mux.HandleFunc("GET /v1/graphs/{id}/export", s.handleExport)
	s.mux.HandleFunc("POST /v1/graphs/install", s.handleInstall)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	// The standard pprof handlers; /debug/pprof/ itself serves the index
	// and the named profiles (heap, goroutine, block, ...).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is written can only be logged to
	// the connection itself; json.Encoder already surfaces them as a broken
	// body.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// statusClientClosed mirrors the de-facto 499 "client closed request"
// convention for requests whose own context was cancelled (the client
// disconnected; nobody reads the response, but the access path still wants
// a terminal status).
const statusClientClosed = 499

// runStatus classifies an error from the decode → resolve → engine-run
// pipeline into an HTTP status: malformed requests are 400, expired
// deadlines 504, disconnected clients 499, compute panics 500, and every
// other runner-stage failure (semantically invalid parameters a decoder
// cannot see, e.g. problem=nope) 422.
func runStatus(err error) int {
	switch {
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	case strings.Contains(err.Error(), "panicked"):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleHealthz reports three-state readiness: "replaying" (503) while the
// process is still recovering its stores, "draining" (503) once shutdown
// has begun, "ok" (200) in between. Draining wins over replaying so a
// process killed mid-recovery still reports the terminal state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inflight, draining := s.gate.stats()
	status := http.StatusOK
	state := "ok"
	switch {
	case draining:
		status = http.StatusServiceUnavailable
		state = "draining"
	case s.replaying.Load():
		status = http.StatusServiceUnavailable
		state = "replaying"
	}
	writeJSON(w, status, map[string]any{"status": state, "inflight": inflight})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	specs := algo.All()
	out := make([]AlgorithmInfo, 0, len(specs))
	for _, sp := range specs {
		info := AlgorithmInfo{
			Name:     sp.Name,
			Aliases:  sp.Aliases,
			Summary:  sp.Summary,
			Kind:     sp.Caps.Kind.String(),
			Seeded:     sp.Caps.Seeded,
			Weighted:   sp.Caps.Weighted,
			Workers:    sp.Caps.Workers,
			Repairable: sp.Caps.Repairable,
		}
		for _, d := range sp.Defs {
			info.Params = append(info.Params, AlgorithmParam{
				Key: d.Key, Default: d.Default, Doc: d.Doc, NoCache: d.NoCache,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCreateGraph creates a served graph: a JSON body generates a
// topology server-side (gen.Family); any other content type is raw graph
// bytes in a graphio format named by ?format= (el|edges|dimacs|col|metis|
// graph, with an optional .gz suffix; Content-Encoding: gzip also works).
func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var gr GenerateRequest
		if err := decodeJSON(r.Body, &gr); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if max := s.opts.maxGenerateVertices(); gr.N > max {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("n=%d exceeds the generation bound %d", gr.N, max))
			return
		}
		built, err := gen.Family(gr.Family, gr.N, gr.Seed)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.respondCreated(w, built)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		writeError(w, http.StatusBadRequest,
			"uploads need ?format=el|edges|dimacs|col|metis|graph (optionally with a .gz suffix); JSON bodies generate instead")
		return
	}
	f, gzipped, err := graphio.FormatForPath("upload." + format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var src io.Reader = r.Body
	if gzipped || r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("gzip: %v", err))
			return
		}
		defer zr.Close()
		// MaxBytesReader only bounds the compressed bytes; bound the
		// decompressed stream too, or a small gzip bomb expands unchecked.
		src = &boundedReader{r: zr, remaining: s.opts.maxBodyBytes() + 1, limit: s.opts.maxBodyBytes()}
	}
	built, err := graphio.Read(src, f)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.respondCreated(w, built)
}

// boundedReader fails the stream once more than limit bytes have been
// delivered (remaining starts at limit+1, so a stream of exactly limit
// bytes still reaches its EOF normally). The resulting parse error surfaces
// as a 400 instead of an unbounded allocation.
type boundedReader struct {
	r         io.Reader
	remaining int64
	limit     int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("decompressed body exceeds the %d-byte limit", b.limit)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (s *Server) respondCreated(w http.ResponseWriter, g *graph.Graph) {
	if g.N() == 0 {
		writeError(w, http.StatusBadRequest, "empty graph")
		return
	}
	id, _ := s.AddGraph(g)
	sg, _ := s.graphByID(id)
	writeJSON(w, http.StatusCreated, graphInfo(sg))
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	list := s.graphList()
	out := make([]GraphInfo, 0, len(list))
	for _, sg := range list {
		out = append(out, graphInfo(sg))
	}
	writeJSON(w, http.StatusOK, out)
}

// graphOr404 resolves {id} or writes the 404.
func (s *Server) graphOr404(w http.ResponseWriter, r *http.Request) (*servedGraph, bool) {
	id := r.PathValue("id")
	sg, ok := s.graphByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no graph %q", id))
	}
	return sg, ok
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	if sg, ok := s.graphOr404(w, r); ok {
		writeJSON(w, http.StatusOK, graphInfo(sg))
	}
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.removeGraph(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no graph %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// requestCtx derives the compute context: the request's own context (so a
// client disconnect cancels the computation) bounded by the effective
// timeout.
func requestCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var rq RunRequest
	if err := decodeJSON(r.Body, &rq); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, params, err := rq.resolve()
	if err != nil {
		writeError(w, runStatus(err), err.Error())
		return
	}
	ctx, cancel := requestCtx(r, rq.timeout(s.opts.DefaultTimeout))
	defer cancel()
	res, err := s.e.Run(ctx, sg.h, spec.Name, params)
	if err != nil {
		writeError(w, runStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, WireResult(res))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var qr QueryRequest
	if err := decodeJSON(r.Body, &qr); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(qr.Vertices) == 0 {
		writeError(w, http.StatusBadRequest, "query wants at least one vertex")
		return
	}
	ctx, cancel := requestCtx(r, s.opts.DefaultTimeout)
	defer cancel()
	snap := sg.st.Snapshot()
	resp := QueryResponse{Snapshot: snap.Fingerprint().String()}
	switch qr.Op {
	case "cluster":
		p := ldd.Params{Epsilon: qr.Eps, Scale: qr.Scale, Seed: qr.Seed, SkipPhase2: qr.Skip2}
		if p.Epsilon == 0 {
			p.Epsilon = 0.3
		}
		if p.Scale == 0 {
			p.Scale = 0.05
		}
		if p.Seed == 0 {
			p.Seed = 1
		}
		clusters, err := s.e.ClusterOf(ctx, sg.h, p, qr.Vertices)
		if err != nil {
			writeError(w, runStatus(err), err.Error())
			return
		}
		resp.Clusters = clusters
	case "ball":
		radius := qr.Radius
		if radius == 0 {
			radius = 2
		}
		if radius < 0 {
			writeError(w, http.StatusBadRequest, "negative radius")
			return
		}
		balls, err := s.e.Balls(ctx, sg.h, qr.Vertices, radius, 0)
		if err != nil {
			writeError(w, runStatus(err), err.Error())
			return
		}
		resp.Balls = balls
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown query op %q (want cluster or ball)", qr.Op))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEdge serves addedge (add=true) and deledge (add=false).
func (s *Server) handleEdge(add bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sg, ok := s.graphOr404(w, r)
		if !ok {
			return
		}
		var mr MutateRequest
		if err := decodeJSON(r.Body, &mr); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		n := sg.st.N()
		if mr.U < 0 || mr.V < 0 || mr.U >= n || mr.V >= n {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("endpoint of {%d, %d} out of range [0, %d)", mr.U, mr.V, n))
			return
		}
		if mr.U == mr.V {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("self-loop {%d, %d} rejected", mr.U, mr.V))
			return
		}
		var applied bool
		if add {
			applied = sg.st.AddEdge(mr.U, mr.V)
		} else {
			applied = sg.st.DeleteEdge(mr.U, mr.V)
		}
		if !applied {
			// Distinguish "no-op" (still 200) from "the WAL refused the
			// write": a mutation that cannot be made durable was NOT applied
			// and must not be acknowledged.
			if werr := sg.st.Err(); werr != nil {
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("mutation rejected: %v", werr))
				return
			}
		}
		writeJSON(w, http.StatusOK, mutateResponse(applied, sg.st.Stats()))
	}
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	if _, err := sg.st.Compact(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse(true, sg.st.Stats()))
}

// batchLineLimit bounds one NDJSON request line.
const batchLineLimit = 1 << 20

// handleBatch streams NDJSON: each input line is a RunRequest, each output
// line a BatchLine, flushed as soon as its run finishes, so a slow client
// sees results trickle in instead of buffering the whole batch. Request
// errors are reported per line and do not abort the stream; a disconnected
// client does (its context cancels the in-flight run).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line BatchLine) {
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 4096), batchLineLimit)
	index := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		index++
		if r.Context().Err() != nil {
			return
		}
		var rq RunRequest
		err := decodeJSON(strings.NewReader(line), &rq)
		var spec *algo.Spec
		var params algo.Params
		if err == nil {
			spec, params, err = rq.resolve()
		}
		if err != nil {
			emit(BatchLine{Index: index, Error: err.Error(), Status: runStatus(err)})
			continue
		}
		ctx, cancel := requestCtx(r, rq.timeout(s.opts.DefaultTimeout))
		res, err := s.e.Run(ctx, sg.h, spec.Name, params)
		cancel()
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nobody is reading
			}
			emit(BatchLine{Index: index, Error: err.Error(), Status: runStatus(err)})
			continue
		}
		emit(BatchLine{Index: index, Result: WireResult(res)})
	}
	if err := sc.Err(); err != nil && r.Context().Err() == nil {
		emit(BatchLine{Index: index + 1, Error: fmt.Sprintf("reading batch stream: %v", err), Status: http.StatusBadRequest})
	}
}

// handleMetrics lives in obshttp.go with the rest of the serving-layer
// observability plumbing.
