package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/graphio"
	"repro/internal/store"
)

// Replication plane: the endpoints a cluster router uses to keep replicas
// of a graph in lockstep with its owner. The owner side exports pending
// deltas (GET deltas) or a full checkpoint (GET export); the replica side
// applies delta batches (POST deltas) or installs a checkpoint as a new
// served graph positioned mid-chain (POST install). All of it rides the
// normal admission gate — replication traffic is traffic.
//
//	GET  /v1/graphs/{id}/deltas?since=E  export deltas with epochs in
//	                                     (E, current]; resync=true when E
//	                                     predates the pending window
//	POST /v1/graphs/{id}/deltas          apply a batch of owner deltas
//	                                     (409 on epoch gap, 422 on
//	                                     divergence; prefix may apply)
//	GET  /v1/graphs/{id}/export          checkpoint of the current snapshot
//	                                     (graphio checkpoint bytes; the
//	                                     chain fingerprint travels in the
//	                                     X-Repro-Fingerprint header)
//	POST /v1/graphs/install?fingerprint= install a checkpoint as a replica
//	                                     positioned at its epoch + chain
//	                                     fingerprint

// handleDeltasGet exports the owner's pending deltas after the cursor.
func (s *Server) handleDeltasGet(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad since: %v", err))
			return
		}
		since = n
	}
	entries, ok := sg.st.DeltasSince(since)
	st := sg.st.Stats()
	resp := DeltasResponse{Since: since, Epoch: st.Epoch, Fingerprint: st.Fingerprint.String()}
	if !ok {
		resp.Resync = true
	} else {
		resp.Entries = wireDeltas(entries)
		s.deltasServed.Add(uint64(len(entries)))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDeltasApply applies a batch of owner deltas to this node's replica
// of the graph. Entries apply in order; the first refusal stops the batch
// and reports the replica's position, so the router can pull the missing
// range (409, epoch gap) or trigger a checkpoint resync (422, divergence).
func (s *Server) handleDeltasApply(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var rq ReplicateRequest
	if err := decodeJSON(r.Body, &rq); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	applied := 0
	position := func() ReplicateResponse {
		st := sg.st.Stats()
		return ReplicateResponse{Applied: applied, Epoch: st.Epoch, Fingerprint: st.Fingerprint.String(), M: st.M}
	}
	for _, wd := range rq.Entries {
		e, err := wd.toStore()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := sg.st.ApplyReplicated(e); err != nil {
			status := http.StatusUnprocessableEntity
			var gap *store.EpochGapError
			if errors.As(err, &gap) {
				status = http.StatusConflict
			}
			resp := position()
			resp.Error = err.Error()
			writeJSON(w, status, resp)
			return
		}
		applied++
	}
	s.deltasApplied.Add(uint64(applied))
	writeJSON(w, http.StatusOK, position())
}

// handleExport streams a checkpoint of the graph's current snapshot. The
// checkpoint format embeds the epoch and the canonical content
// fingerprint; the chain fingerprint (which an importer cannot re-derive
// mid-window) travels in the X-Repro-Fingerprint header.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	snap := sg.st.Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repro-Epoch", strconv.FormatUint(snap.Epoch(), 10))
	w.Header().Set("X-Repro-Fingerprint", snap.Fingerprint().String())
	if err := graphio.WriteCheckpoint(w, snap.Graph(), snap.Epoch()); err != nil {
		// The header is out; all we can do is truncate the stream (the
		// checkpoint CRC makes the truncation visible to the importer).
		return
	}
}

// handleInstall creates a served graph from an exported checkpoint,
// positioned at the checkpoint's epoch and the chain fingerprint named by
// ?fingerprint= — the resync half of replication, used when a (re)joining
// node is too far behind the owner's delta window to stream.
func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	fpHex := r.URL.Query().Get("fingerprint")
	if fpHex == "" {
		writeError(w, http.StatusBadRequest, "install needs ?fingerprint= (the owner's chain fingerprint)")
		return
	}
	fp, err := graphio.ParseFingerprint(fpHex)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, epoch, _, err := graphio.ReadCheckpoint(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading checkpoint: %v", err))
		return
	}
	if g.N() == 0 {
		writeError(w, http.StatusBadRequest, "empty graph")
		return
	}
	id, _ := s.AddStore(store.NewReplicaAt(g, epoch, fp))
	s.installs.Add(1)
	sg, _ := s.graphByID(id)
	writeJSON(w, http.StatusCreated, graphInfo(sg))
}
