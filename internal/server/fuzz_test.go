package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
)

// runRequestSeeds is the fuzz corpus for the run-request JSON decoder,
// derived from the trace language of cmd/serve (every documented trace line
// has a JSON equivalent) plus structurally hostile inputs.
var runRequestSeeds = []string{
	`{"algo":"changli","q":"eps=0.3 seed=4 scale=0.05"}`,
	`{"algo":"changli","q":"eps=0.3 seed=4 skip2=true"}`,
	`{"algo":"chang-li","params":{"eps":"0.30","seed":"4"}}`,
	`{"algo":"weighted","q":"eps=0.3 wseed=2 wmax=8"}`,
	`{"algo":"en","q":"lambda=0.4 seed=1"}`,
	`{"algo":"mpx","q":"lambda=0.4 seed=1"}`,
	`{"algo":"blackbox","q":"eps=0.3 enbase=true"}`,
	`{"algo":"sparsecover","q":"lambda=0.5 seed=2"}`,
	`{"algo":"cover","params":{"lambda":"0.5"},"timeout_ms":40}`,
	`{"algo":"netdecomp","q":"lambda=0.5 seed=1"}`,
	`{"algo":"gkm","q":"problem=mis eps=0.25 seed=3 scale=0.4"}`,
	`{"algo":"packing","q":"problem=mis prep=2 seed=1"}`,
	`{"algo":"covering","q":"problem=vc prep=2 seed=1"}`,
	`{"algo":"solve","params":{"problem":"mis"}}`,
	`{"algo":"solve","q":"problem=kdom k=2"}`,
	`{"algo":"changli","q":"eps="}`,
	`{"algo":"changli","q":"eps"}`,
	`{"algo":"changli","q":"eps=0.3 eps=0.4"}`,
	`{"algo":"changli","params":{"eps":"0.3"},"q":"eps=0.4"}`,
	`{"algo":""}`,
	`{"algo":"changli","timeout_ms":-1}`,
	`{"algo":"changli","bogus":true}`,
	`{"algo":42}`,
	`{"algo":"changli"} trailing`,
	`{`,
	``,
	`null`,
	`[]`,
	`"changli"`,
	"{\"algo\":\"changli\",\"q\":\"eps=\x00\"}",
}

// FuzzRunRequestDecoder drives the full POST /run handler with arbitrary
// bodies on a tiny served graph: malformed input must come back 400 (or
// 422/504 once it reaches the runner layer) and must never panic the
// handler. The server runs with a short default timeout so fuzz-found
// parameter combinations cannot stall the worker.
func FuzzRunRequestDecoder(f *testing.F) {
	for _, s := range runRequestSeeds {
		f.Add(s)
	}
	srv := New(engine.New(engine.Options{}), Options{DefaultTimeout: 80 * time.Millisecond})
	ts := httptest.NewServer(srv)
	f.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	if _, err := c.Generate(context.Background(), "cycle", 24, 1); err != nil {
		f.Fatal(err)
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
		http.StatusGatewayTimeout:      true,
	}
	f.Fuzz(func(t *testing.T, body string) {
		// A panic inside the handler propagates through the direct
		// ServeHTTP call below and fails the fuzz run.
		req := httptest.NewRequest(http.MethodPost, "/v1/graphs/g1/run", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if !allowed[rec.Code] {
			t.Fatalf("body %q: unexpected status %d: %s", body, rec.Code, rec.Body.String())
		}
		if rec.Code != http.StatusOK && !strings.Contains(rec.Body.String(), "error") {
			t.Fatalf("body %q: %d response without error envelope: %s", body, rec.Code, rec.Body.String())
		}
	})
}

// FuzzParamBag targets the k=v bag decoding underneath the run request (the
// same trace-language corpus, raw): resolve must reject or accept without
// panicking, and an accepted bag must produce a valid canonical cache key.
func FuzzParamBag(f *testing.F) {
	corpus := []string{
		"changli eps=0.3 seed=4 scale=0.05",
		"weighted eps=0.3 wseed=2",
		"en lambda=0.4 seed=1",
		"sparsecover lambda=0.5 seed=2",
		"netdecomp lambda=0.5 seed=1",
		"gkm problem=mis eps=0.25 seed=3",
		"packing problem=mis prep=2 seed=1",
		"covering problem=vc prep=2 seed=1",
		"solve problem=mis",
		"changli eps=",
		"changli eps=0.3 eps=0.4",
		"changli =3",
		"changli \x00=1",
		"bogus k=v",
		"",
	}
	for _, s := range corpus {
		op, rest, _ := strings.Cut(s, " ")
		f.Add(op, rest)
	}
	f.Fuzz(func(t *testing.T, algoName, q string) {
		rq := RunRequest{Algo: algoName, Q: q}
		spec, params, err := rq.resolve()
		if err != nil {
			return
		}
		key, err := spec.CacheKey(params)
		if err != nil {
			t.Fatalf("resolve accepted %q %q but CacheKey rejects: %v", algoName, q, err)
		}
		if !strings.HasPrefix(key, spec.Name) {
			t.Fatalf("cache key %q does not start with %q", key, spec.Name)
		}
	})
}

// TestFuzzSeedsAsUnitCases replays the whole seed corpus once as a plain
// test, so the decoder contract is exercised on every `go test` run even
// when nobody runs the fuzzer.
func TestFuzzSeedsAsUnitCases(t *testing.T) {
	srv := New(engine.New(engine.Options{}), Options{DefaultTimeout: time.Second})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	if _, err := c.Generate(context.Background(), "cycle", 24, 1); err != nil {
		t.Fatal(err)
	}
	for _, body := range runRequestSeeds {
		req := httptest.NewRequest(http.MethodPost, "/v1/graphs/g1/run", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusGatewayTimeout:
		default:
			t.Errorf("seed %q: status %d: %s", body, rec.Code, rec.Body.String())
		}
	}
	// Spot-check that the malformed seeds really are rejected, not silently
	// defaulted: a bag with a duplicate key must be a 400.
	if _, _, err := (&RunRequest{Algo: "changli", Q: "eps=0.3 eps=0.4"}).resolve(); err == nil {
		t.Error("duplicate q key accepted")
	}
	if _, ok := algo.Get("changli"); !ok {
		t.Fatal("registry lost changli")
	}
}
