// Package fractional computes exact optima of the *fractional* relaxations
// of vertex cover and independent set. The paper contrasts its integer
// results with the fractional case: Kuhn–Moscibroda–Wattenhofer showed
// (1±ε)-approximate fractional packing/covering LPs take only O(log n / ε)
// rounds, and Section 1.2 notes their approach does not extend to ILPs —
// the gap this paper closes. This package provides the fractional side as
// an exact oracle, used by the experiments as an upper bound for MIS on
// graphs where the integral optimum has no polynomial oracle (odd cycles,
// random regular graphs).
//
// Method (Nemhauser–Trotter): the vertex cover LP
//
//	min Σ x_v  s.t.  x_u + x_v >= 1 per edge, 0 <= x <= 1
//
// always has a half-integral optimal solution, computable from a minimum
// vertex cover of the bipartite double cover of G: vertex v is covered on
// both sides → x_v = 1, one side → x_v = 1/2, neither → x_v = 0. By LP
// duality and complementation, α*(G) = n − τ*(G) bounds the independence
// number from above.
package fractional

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// Value is a half-integral LP value expressed in half-units, so it stays
// exact in integer arithmetic: HalfUnits = 2·value.
type Value struct {
	HalfUnits int64
}

// Float returns the value as a float64.
func (v Value) Float() float64 { return float64(v.HalfUnits) / 2 }

// Solution is a half-integral assignment: X[v] ∈ {0, 1, 2} counts
// half-units (0, 1/2, 1).
type Solution struct {
	X []int8
}

// Weight returns the total of the assignment in half-units.
func (s Solution) Weight() Value {
	var total int64
	for _, x := range s.X {
		total += int64(x)
	}
	return Value{HalfUnits: total}
}

// doubleCover builds the bipartite double cover: vertices (v, 0) = v and
// (v, 1) = n + v; every edge {u, v} becomes (u,0)-(v,1) and (v,0)-(u,1).
func doubleCover(g *graph.Graph) *graph.Graph {
	n := g.N()
	b := graph.NewBuilder(2 * n)
	g.Edges(func(u, v int) {
		b.AddEdge(u, n+v)
		b.AddEdge(v, n+u)
	})
	return b.Build()
}

// VertexCoverLP returns an optimal half-integral solution of the vertex
// cover LP and its value τ*(G).
func VertexCoverLP(g *graph.Graph) (Solution, Value) {
	n := g.N()
	dc := doubleCover(g)
	side := make([]int8, 2*n)
	for v := 0; v < n; v++ {
		side[v] = 0
		side[n+v] = 1
	}
	r := matching.Bipartite(dc, side)
	inCover := make([]bool, 2*n)
	for _, v := range r.MinVertexCover {
		inCover[v] = true
	}
	sol := Solution{X: make([]int8, n)}
	for v := 0; v < n; v++ {
		switch {
		case inCover[v] && inCover[n+v]:
			sol.X[v] = 2
		case inCover[v] || inCover[n+v]:
			sol.X[v] = 1
		}
	}
	return sol, sol.Weight()
}

// IndependentSetLP returns α*(G) = n − τ*(G), the fractional relaxation
// optimum of maximum independent set (an upper bound on α(G)), together
// with the complementary half-integral solution.
func IndependentSetLP(g *graph.Graph) (Solution, Value) {
	cover, tau := VertexCoverLP(g)
	sol := Solution{X: make([]int8, g.N())}
	for v := range sol.X {
		sol.X[v] = 2 - cover.X[v]
	}
	return sol, Value{HalfUnits: 2*int64(g.N()) - tau.HalfUnits}
}

// VerifyCoverLP checks LP feasibility of a half-integral cover: every edge
// has x_u + x_v >= 1 (i.e. >= 2 half-units).
func VerifyCoverLP(g *graph.Graph, s Solution) bool {
	ok := true
	g.Edges(func(u, v int) {
		if int(s.X[u])+int(s.X[v]) < 2 {
			ok = false
		}
	})
	return ok
}

// VerifyISLP checks LP feasibility of a half-integral independent set:
// every edge has x_u + x_v <= 1.
func VerifyISLP(g *graph.Graph, s Solution) bool {
	ok := true
	g.Edges(func(u, v int) {
		if int(s.X[u])+int(s.X[v]) > 2 {
			ok = false
		}
	})
	return ok
}

// CrownReduction applies the Nemhauser–Trotter persistency property: in
// some optimal *integral* vertex cover, every LP-1 vertex is included and
// every LP-0 vertex excluded; only the LP-half vertices remain undecided.
// It returns (forcedIn, forcedOut, undecided) vertex lists — the classic
// kernelization for vertex cover, exposed for the solver experiments.
func CrownReduction(g *graph.Graph) (forcedIn, forcedOut, undecided []int32) {
	sol, _ := VertexCoverLP(g)
	for v, x := range sol.X {
		switch x {
		case 2:
			forcedIn = append(forcedIn, int32(v))
		case 0:
			forcedOut = append(forcedOut, int32(v))
		default:
			undecided = append(undecided, int32(v))
		}
	}
	return forcedIn, forcedOut, undecided
}
