package fractional

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/problems"
	"repro/internal/xrand"
)

func TestOddCycle(t *testing.T) {
	// τ*(C_{2k+1}) = (2k+1)/2: all-half is optimal and beats the integral
	// τ = k+1.
	g := gen.Cycle(9)
	sol, tau := VertexCoverLP(g)
	if !VerifyCoverLP(g, sol) {
		t.Fatal("LP cover infeasible")
	}
	if tau.HalfUnits != 9 { // 9 half-units = 4.5
		t.Fatalf("tau* = %v, want 4.5", tau.Float())
	}
	_, alpha := IndependentSetLP(g)
	if alpha.Float() != 4.5 {
		t.Fatalf("alpha* = %v, want 4.5", alpha.Float())
	}
}

func TestCompleteGraph(t *testing.T) {
	// τ*(K_n): the all-half solution gives n/2; integral τ = n-1.
	g := gen.Complete(6)
	sol, tau := VertexCoverLP(g)
	if !VerifyCoverLP(g, sol) {
		t.Fatal("infeasible")
	}
	if tau.Float() != 3 {
		t.Fatalf("tau*(K6) = %v, want 3", tau.Float())
	}
}

func TestBipartiteIsIntegral(t *testing.T) {
	// On bipartite graphs the LP has an integral optimum equal to τ
	// (König): no half values needed in the optimum VALUE (the solution
	// may still use halves, but the value matches).
	for _, g := range []*graph.Graph{gen.Cycle(10), gen.Path(9), gen.CompleteBipartite(3, 5), gen.Grid(5, 6)} {
		_, tau := VertexCoverLP(g)
		want, err := problems.ExactOptimum(problems.MinVertexCover, g)
		if err != nil {
			t.Fatal(err)
		}
		if tau.Float() != float64(want) {
			t.Fatalf("bipartite tau* = %v != tau = %d", tau.Float(), want)
		}
	}
}

func TestLPBoundsSandwich(t *testing.T) {
	// τ*/1 <= τ <= 2τ* and α <= α* on random graphs (α via brute force).
	rng := xrand.New(3)
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(9)
		g := gen.GNP(n, 0.35, rng)
		sol, tau := VertexCoverLP(g)
		if !VerifyCoverLP(g, sol) {
			t.Fatal("infeasible LP cover")
		}
		tauInt := bruteVC(g)
		if tau.Float() > float64(tauInt)+1e-9 {
			t.Fatalf("tau* %v > tau %d", tau.Float(), tauInt)
		}
		if 2*tau.Float() < float64(tauInt)-1e-9 {
			t.Fatalf("2tau* %v < tau %d (half-integrality bound)", 2*tau.Float(), tauInt)
		}
		isSol, alpha := IndependentSetLP(g)
		if !VerifyISLP(g, isSol) {
			t.Fatal("infeasible LP independent set")
		}
		alphaInt := int64(n) - int64(tauInt) // Gallai
		if alpha.Float() < float64(alphaInt)-1e-9 {
			t.Fatalf("alpha* %v < alpha %d", alpha.Float(), alphaInt)
		}
	}
}

func TestCrownReductionPersistency(t *testing.T) {
	// The LP-1/LP-0 classification must be consistent with some optimal
	// integral cover: check via brute force that forcing the LP-1 vertices
	// in and LP-0 out still allows an optimal cover.
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		g := gen.GNP(n, 0.3, rng)
		forcedIn, forcedOut, undecided := CrownReduction(g)
		opt := bruteVC(g)
		best := bruteVCWithForcing(g, forcedIn, forcedOut)
		if best != opt {
			t.Fatalf("trial %d: forcing broke optimality: %d vs %d (in=%v out=%v und=%v)",
				trial, best, opt, forcedIn, forcedOut, undecided)
		}
	}
}

func TestStarLP(t *testing.T) {
	// Star: LP optimum is integral (bipartite): center alone.
	g := gen.Star(8)
	_, tau := VertexCoverLP(g)
	if tau.Float() != 1 {
		t.Fatalf("tau*(star) = %v", tau.Float())
	}
	forcedIn, forcedOut, und := CrownReduction(g)
	if len(forcedIn) != 1 || forcedIn[0] != 0 {
		t.Fatalf("crown should force the center: %v", forcedIn)
	}
	if len(forcedOut) != 7 || len(und) != 0 {
		t.Fatalf("crown classification: out=%v und=%v", forcedOut, und)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	sol, tau := VertexCoverLP(g)
	if tau.HalfUnits != 0 {
		t.Fatalf("edgeless tau* = %v", tau.Float())
	}
	if !VerifyCoverLP(g, sol) || !VerifyISLP(g, Solution{X: []int8{2, 2, 2, 2, 2}}) {
		t.Fatal("verification on edgeless graph")
	}
}

func TestPetersenFractional(t *testing.T) {
	// Petersen graph: 3-regular vertex-transitive, alpha = 4, tau = 6,
	// tau* = 5 (all-half), alpha* = 5.
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
		b.AddEdge(5+i, 5+(i+2)%5)
		b.AddEdge(i, 5+i)
	}
	g := b.Build()
	_, tau := VertexCoverLP(g)
	if tau.Float() != 5 {
		t.Fatalf("tau*(Petersen) = %v, want 5", tau.Float())
	}
	_, alpha := IndependentSetLP(g)
	if alpha.Float() != 5 {
		t.Fatalf("alpha*(Petersen) = %v, want 5", alpha.Float())
	}
}

// --- brute-force helpers ----------------------------------------------------

func bruteVC(g *graph.Graph) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		g.Edges(func(u, v int) {
			if mask&(1<<u) == 0 && mask&(1<<v) == 0 {
				ok = false
			}
		})
		if ok {
			if c := popcount(mask); c < best {
				best = c
			}
		}
	}
	return best
}

func bruteVCWithForcing(g *graph.Graph, forcedIn, forcedOut []int32) int {
	n := g.N()
	mustIn := 0
	mustOut := 0
	for _, v := range forcedIn {
		mustIn |= 1 << v
	}
	for _, v := range forcedOut {
		mustOut |= 1 << v
	}
	best := 1 << 20
	for mask := 0; mask < 1<<n; mask++ {
		if mask&mustIn != mustIn || mask&mustOut != 0 {
			continue
		}
		ok := true
		g.Edges(func(u, v int) {
			if mask&(1<<u) == 0 && mask&(1<<v) == 0 {
				ok = false
			}
		})
		if ok {
			if c := popcount(mask); c < best {
				best = c
			}
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
