// Package hypergraph provides the hypergraph substrate used to model
// packing and covering integer linear programs in the LOCAL model, following
// Definition 1.3 of Chang–Li (PODC 2023): every ILP variable is a vertex and
// every constraint is a hyperedge containing the variables with nonzero
// coefficient.
//
// Communication in the hypergraph LOCAL model lets a vertex talk to every
// vertex it shares a hyperedge with, so the communication structure is the
// primal graph (a clique on every hyperedge). Distances, balls, and
// decompositions on a hypergraph are defined on that primal graph; this
// package materializes it once and exposes the same query surface as
// internal/graph.
package hypergraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// H is an immutable hypergraph on vertices 0..N-1. Build with NewBuilder or
// the convenience constructors.
type H struct {
	n      int
	edges  [][]int32 // sorted vertex lists per hyperedge
	vEdges [][]int32 // hyperedge ids incident to each vertex
	primal *graph.Graph
}

// Builder accumulates hyperedges.
type Builder struct {
	n     int
	edges [][]int32
}

// NewBuilder returns a builder for a hypergraph on n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records a hyperedge on the given vertices. Out-of-range vertices
// are dropped; duplicate vertices within a hyperedge are collapsed; empty
// hyperedges (after filtering) are kept, because an empty covering
// constraint is semantically meaningful (unsatisfiable) and the ILP layer
// wants to detect it.
func (b *Builder) AddEdge(vertices ...int) int {
	e := make([]int32, 0, len(vertices))
	for _, v := range vertices {
		if v >= 0 && v < b.n {
			e = append(e, int32(v))
		}
	}
	sort.Slice(e, func(i, j int) bool { return e[i] < e[j] })
	dedup := e[:0]
	var prev int32 = -1
	for _, v := range e {
		if v != prev {
			dedup = append(dedup, v)
			prev = v
		}
	}
	b.edges = append(b.edges, dedup)
	return len(b.edges) - 1
}

// Build finalizes the hypergraph and its primal graph.
func (b *Builder) Build() *H {
	h := &H{
		n:      b.n,
		edges:  b.edges,
		vEdges: make([][]int32, b.n),
	}
	gb := graph.NewBuilder(b.n)
	for ei, e := range b.edges {
		for i, u := range e {
			h.vEdges[u] = append(h.vEdges[u], int32(ei))
			for _, v := range e[i+1:] {
				gb.AddEdge(int(u), int(v))
			}
		}
	}
	h.primal = gb.Build()
	return h
}

// N returns the number of vertices.
func (h *H) N() int { return h.n }

// M returns the number of hyperedges.
func (h *H) M() int { return len(h.edges) }

// Edge returns the sorted vertex list of hyperedge e. The slice aliases
// internal storage and must not be modified.
func (h *H) Edge(e int) []int32 { return h.edges[e] }

// IncidentEdges returns the hyperedges containing vertex v.
func (h *H) IncidentEdges(v int) []int32 { return h.vEdges[v] }

// Primal returns the primal (communication) graph: an edge between every
// pair of vertices that share a hyperedge.
func (h *H) Primal() *graph.Graph { return h.primal }

// Rank returns the maximum hyperedge size.
func (h *H) Rank() int {
	r := 0
	for _, e := range h.edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// MaxDegree returns the maximum number of hyperedges incident to a vertex.
func (h *H) MaxDegree() int {
	d := 0
	for _, ve := range h.vEdges {
		if len(ve) > d {
			d = len(ve)
		}
	}
	return d
}

// EdgeInside reports whether every vertex of hyperedge e lies in the set
// marked by inSet.
func (h *H) EdgeInside(e int, inSet []bool) bool {
	for _, v := range h.edges[e] {
		if !inSet[v] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (h *H) String() string {
	return fmt.Sprintf("hypergraph(n=%d, m=%d, rank=%d)", h.n, h.M(), h.Rank())
}

// FromGraph lifts an ordinary graph to a hypergraph whose hyperedges are
// exactly the graph's edges (rank 2). Useful for problems like vertex cover
// whose constraints live on edges.
func FromGraph(g *graph.Graph) *H {
	b := NewBuilder(g.N())
	g.Edges(func(u, v int) { b.AddEdge(u, v) })
	return b.Build()
}

// ClosedNeighborhoods returns the hypergraph whose hyperedges are the closed
// neighborhoods N^1(v) for every vertex of g — the dominating-set
// constraint hypergraph.
func ClosedNeighborhoods(g *graph.Graph) *H {
	return DistanceNeighborhoods(g, 1)
}

// DistanceNeighborhoods returns the hypergraph whose hyperedges are the
// balls N^k(v) of g — the k-distance dominating-set constraint hypergraph
// from the paper's Definition 1.3 example. One communication round on this
// hypergraph costs k rounds on g; SimulationCost reports that factor.
func DistanceNeighborhoods(g *graph.Graph, k int) *H {
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		ball := g.Ball(v, k)
		vs := make([]int, len(ball))
		for i, u := range ball {
			vs[i] = int(u)
		}
		b.AddEdge(vs...)
	}
	return b.Build()
}

// SimulationCost returns the number of rounds of the base graph g needed to
// simulate one round of the hypergraph h when h's hyperedges are
// k-neighborhoods of g (Definition 1.3 discussion). For general hypergraphs
// it is the maximum, over hyperedges, of the weak diameter of the hyperedge
// in g — the distance any two co-edge vertices must bridge.
func SimulationCost(g *graph.Graph, h *H) int {
	cost := 0
	for e := 0; e < h.M(); e++ {
		wd := g.WeakDiameter(h.Edge(e))
		if wd > cost {
			cost = wd
		}
	}
	return cost
}
