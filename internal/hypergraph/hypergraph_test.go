package hypergraph

import (
	"testing"

	"repro/internal/graph/gen"
)

func TestBasicBuild(t *testing.T) {
	b := NewBuilder(5)
	e0 := b.AddEdge(0, 1, 2)
	e1 := b.AddEdge(2, 3)
	e2 := b.AddEdge(4)
	h := b.Build()
	if h.N() != 5 || h.M() != 3 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	if e0 != 0 || e1 != 1 || e2 != 2 {
		t.Fatal("edge ids not sequential")
	}
	if h.Rank() != 3 {
		t.Fatalf("rank = %d", h.Rank())
	}
	if h.MaxDegree() != 2 { // vertex 2 is in two edges
		t.Fatalf("max degree = %d", h.MaxDegree())
	}
}

func TestEdgeNormalization(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(3, 1, 1, -5, 99, 2)
	h := b.Build()
	e := h.Edge(0)
	want := []int32{1, 2, 3}
	if len(e) != 3 {
		t.Fatalf("edge = %v", e)
	}
	for i := range e {
		if e[i] != want[i] {
			t.Fatalf("edge = %v, want %v", e, want)
		}
	}
}

func TestIncidence(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	h := b.Build()
	if got := h.IncidentEdges(1); len(got) != 3 {
		t.Fatalf("incidence of 1 = %v", got)
	}
	if got := h.IncidentEdges(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("incidence of 0 = %v", got)
	}
}

func TestPrimalGraph(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 2) // clique {0,1,2}
	b.AddEdge(3, 4)
	h := b.Build()
	p := h.Primal()
	if p.M() != 3+1 {
		t.Fatalf("primal m = %d", p.M())
	}
	if !p.HasEdge(0, 2) {
		t.Fatal("primal missing clique edge")
	}
	if p.HasEdge(2, 3) {
		t.Fatal("primal has phantom edge")
	}
}

func TestEdgeInside(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	h := b.Build()
	in := []bool{true, true, true, false}
	if !h.EdgeInside(0, in) {
		t.Fatal("edge should be inside")
	}
	in[1] = false
	if h.EdgeInside(0, in) {
		t.Fatal("edge should not be inside")
	}
}

func TestFromGraph(t *testing.T) {
	g := gen.Cycle(6)
	h := FromGraph(g)
	if h.M() != 6 || h.Rank() != 2 {
		t.Fatalf("m=%d rank=%d", h.M(), h.Rank())
	}
	// Primal of a rank-2 hypergraph is the graph itself.
	if h.Primal().M() != g.M() {
		t.Fatal("primal should equal the source graph")
	}
}

func TestClosedNeighborhoods(t *testing.T) {
	g := gen.Star(5) // center 0, leaves 1..4
	h := ClosedNeighborhoods(g)
	if h.M() != 5 {
		t.Fatalf("m = %d", h.M())
	}
	// The hyperedge of the center is the whole star.
	if len(h.Edge(0)) != 5 {
		t.Fatalf("center hyperedge = %v", h.Edge(0))
	}
	// A leaf's hyperedge is {leaf, center}.
	if len(h.Edge(1)) != 2 {
		t.Fatalf("leaf hyperedge = %v", h.Edge(1))
	}
}

func TestDistanceNeighborhoods(t *testing.T) {
	g := gen.Path(7)
	h := DistanceNeighborhoods(g, 2)
	// Middle vertex 3: ball of radius 2 has 5 vertices.
	if len(h.Edge(3)) != 5 {
		t.Fatalf("middle hyperedge size = %d", len(h.Edge(3)))
	}
	// Endpoint 0: ball has 3 vertices.
	if len(h.Edge(0)) != 3 {
		t.Fatalf("end hyperedge size = %d", len(h.Edge(0)))
	}
}

func TestSimulationCost(t *testing.T) {
	g := gen.Path(9)
	h := DistanceNeighborhoods(g, 2)
	// Any two vertices sharing a radius-2 ball are within distance 4.
	cost := SimulationCost(g, h)
	if cost != 4 {
		t.Fatalf("simulation cost = %d, want 4", cost)
	}
	h1 := FromGraph(g)
	if c := SimulationCost(g, h1); c != 1 {
		t.Fatalf("rank-2 simulation cost = %d, want 1", c)
	}
}
