package repro

// One benchmark target per experiment in the DESIGN.md index (E1–E12): each
// runs the corresponding experiment in Quick mode, so
//
//	go test -bench=. -benchmem
//
// regenerates every table's workload with timing. cmd/experiments prints
// the full-size tables. Additional micro-benchmarks cover the core
// algorithms on their own.

import (
	"testing"

	"repro/internal/expt"
	"repro/internal/gkm"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/packing"
	"repro/internal/problems"
	"repro/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tbl := e.Run(expt.Config{Seed: uint64(i) + 1, Quick: true})
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1LDDQuality(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2WHPFailure(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3MPXFailure(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4PackingRatio(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5CoveringRatio(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6RoundScaling(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7RoundScalingN(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8Blackbox(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9SparseCover(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10LowerBound(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11KDomSet(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Concentration(b *testing.B) {
	benchExperiment(b, "E12")
}

// --- Micro-benchmarks: the core algorithms in isolation -------------------

func BenchmarkAlgoElkinNeiman(b *testing.B) {
	g := gen.Cycle(4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ldd.ElkinNeiman(g, nil, ldd.ENParams{Lambda: 0.2, Seed: uint64(i)})
	}
}

func BenchmarkAlgoChangLiPaperConstants(b *testing.B) {
	g := gen.Grid(30, 30)
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: uint64(i)})
	}
}

func BenchmarkAlgoChangLiScaled(b *testing.B) {
	g := gen.Cycle(3000)
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: uint64(i), Scale: 0.001})
	}
}

// BenchmarkAlgoChangLiLarge is the large-graph decomposition benchmark the
// -cpu sweep reads for parallel speedup: the GNP instance is big enough
// that BFS frontier degree sums clear the parallel dispatch threshold, and
// Workers is left zero so -cpu (via GOMAXPROCS) controls the worker count.
// Output is bit-identical at every -cpu value; only the time moves.
func BenchmarkAlgoChangLiLarge(b *testing.B) {
	g := gen.GNP(60000, 8.0/60000, xrand.New(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLi(g, ldd.Params{Epsilon: 0.25, Seed: uint64(i), Scale: 0.05})
	}
}

func BenchmarkAlgoBlackbox(b *testing.B) {
	g := gen.Cycle(2000)
	for i := 0; i < b.N; i++ {
		_ = ldd.Blackbox(g, ldd.BlackboxParams{Epsilon: 0.2, Seed: uint64(i), Scale: 0.01})
	}
}

func BenchmarkAlgoSparseCover(b *testing.B) {
	g := gen.Cycle(3000)
	for i := 0; i < b.N; i++ {
		_ = ldd.SparseCover(g, nil, ldd.ENParams{Lambda: 0.3, Seed: uint64(i)})
	}
}

func BenchmarkAlgoPackingMIS(b *testing.B) {
	g := gen.Cycle(300)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = packing.Solve(inst, packing.Params{Epsilon: 0.25, Seed: uint64(i), PrepRuns: 2})
	}
}

func BenchmarkAlgoGKMPackingMIS(b *testing.B) {
	g := gen.Cycle(120)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gkm.SolvePacking(inst, gkm.Params{Epsilon: 0.25, Seed: uint64(i), Scale: 0.4})
	}
}

// --- Ablation benchmarks (the design-choice studies listed in DESIGN.md) --

// Ablation 1: two executors, one semantics — oracle vs message passing
// (sequential and parallel) on the same Elkin–Neiman instance.
func BenchmarkAblationExecutorOracle(b *testing.B) {
	g := gen.Torus(20, 20)
	for i := 0; i < b.N; i++ {
		_ = ldd.ElkinNeiman(g, nil, ldd.ENParams{Lambda: 0.25, Seed: uint64(i)})
	}
}

func BenchmarkAblationExecutorMsgSequential(b *testing.B) {
	g := gen.Torus(20, 20)
	for i := 0; i < b.N; i++ {
		if _, _, err := ldd.ElkinNeimanDistributed(g, ldd.ENParams{Lambda: 0.25, Seed: uint64(i)}, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationExecutorMsgParallel(b *testing.B) {
	g := gen.Torus(20, 20)
	for i := 0; i < b.N; i++ {
		if _, _, err := ldd.ElkinNeimanDistributed(g, ldd.ENParams{Lambda: 0.25, Seed: uint64(i)}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 2: the Scale knob — quality/round trade-off of Chang-Li on a
// long cycle. ReportMetric exposes rounds and deleted fraction per scale.
func benchScale(b *testing.B, scale float64) {
	g := gen.Cycle(3000)
	rounds, deleted := 0, 0.0
	for i := 0; i < b.N; i++ {
		d := ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: uint64(i), Scale: scale})
		rounds = d.Rounds
		deleted = d.UnclusteredFraction()
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(deleted, "deletedFrac")
}

func BenchmarkAblationScale0001(b *testing.B) { benchScale(b, 0.001) }
func BenchmarkAblationScale001(b *testing.B)  { benchScale(b, 0.01) }
func BenchmarkAblationScale01(b *testing.B)   { benchScale(b, 0.1) }

// Ablation 3: exact vs greedy local solves for the packing solver.
func BenchmarkAblationPackingExactLocal(b *testing.B) {
	g := gen.Cycle(200)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = packing.Solve(inst, packing.Params{Epsilon: 0.25, Seed: uint64(i), PrepRuns: 2})
	}
}

func BenchmarkAblationPackingGreedyLocal(b *testing.B) {
	g := gen.Cycle(200)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := packing.Params{Epsilon: 0.25, PrepRuns: 2}
	p.Solve.ForceGreedy = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		_ = packing.Solve(inst, p)
	}
}

// Ablation 4: Phase 2 on/off for the decomposition (covering-style t).
func BenchmarkAblationPhase2On(b *testing.B) {
	g := gen.Cycle(2000)
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: uint64(i), Scale: 0.002})
	}
}

func BenchmarkAblationPhase2Off(b *testing.B) {
	g := gen.Cycle(2000)
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: uint64(i), Scale: 0.002, SkipPhase2: true})
	}
}

// Extension: the Section-4 alternative packing pipeline vs the main one.
func BenchmarkExtensionAlternativePacking(b *testing.B) {
	g := gen.Cycle(200)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = packing.SolveAlternative(inst, packing.Params{Epsilon: 0.25, Seed: uint64(i)}, 6)
	}
}

// Extension: weighted decomposition.
func BenchmarkExtensionWeightedLDD(b *testing.B) {
	g := gen.Cycle(2000)
	w := make([]int64, g.N())
	for i := range w {
		w[i] = int64(1 + i%7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ldd.ChangLiWeighted(g, w, ldd.Params{Epsilon: 0.25, Seed: uint64(i), Scale: 0.002})
	}
}

func BenchmarkE13SpannerTail(b *testing.B) { benchExperiment(b, "E13") }

func BenchmarkE14RegistrySweep(b *testing.B) { benchExperiment(b, "E14") }
