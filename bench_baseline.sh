#!/usr/bin/env bash
# bench_baseline.sh — capture the benchmark baseline for the current
# revision so the perf trajectory is tracked PR over PR.
#
# Runs every experiment benchmark (BenchmarkE*), algorithm
# micro-benchmark (BenchmarkAlgo*), and serving-layer benchmark
# (BenchmarkEngine*, in ./internal/engine) with -benchmem and writes the
# parsed results to BENCH_<rev>.json (one object per benchmark: name,
# iterations, ns/op, B/op, allocs/op, plus any custom ReportMetric
# columns — the engine benchmarks report sampled hit-latency tails as
# p99-ns/p50-ns, which land in the JSON as p99_ns/p50_ns per run).
#
# Usage:
#   ./bench_baseline.sh            # count=1 (quick snapshot)
#   COUNT=3 ./bench_baseline.sh    # repeated runs for stabler numbers
#   BENCH='BenchmarkE5.*' ./bench_baseline.sh   # restrict the pattern
#   CPU=8 OUT=BENCH_par8.json ./bench_baseline.sh  # contention runs: pass
#       -cpu to go test (benchmark names gain a -8 suffix) and name the
#       output explicitly so parallel-run numbers don't overwrite the
#       sequential baseline
#   CPU=1,4 OUT=BENCH_sweep.json ./bench_baseline.sh  # serial/parallel
#       sweep in one file: each benchmark runs at -cpu 1 and -cpu 4
#       (names get -1/-4 suffixes), so one capture shows the scaling;
#       cmd/benchdiff compares the -1 rows against a serial baseline
#       and warns when two baselines were taken under different
#       GOMAXPROCS
set -euo pipefail
cd "$(dirname "$0")"

REV=$(git rev-parse --short HEAD 2>/dev/null || echo "worktree")
# Uncommitted changes to tracked files produce numbers that are not HEAD's:
# label them so the rev-to-numbers mapping stays honest. Untracked files
# (like this script's own BENCH_*.json output) don't count.
if [ -n "$(git status --porcelain -uno 2>/dev/null)" ]; then
	REV="${REV}-dirty"
fi
COUNT="${COUNT:-1}"
BENCH="${BENCH:-BenchmarkE|BenchmarkAlgo}"
OUT="${OUT:-BENCH_${REV}.json}"
CPU="${CPU:-}"
CPUFLAG=()
if [ -n "$CPU" ]; then
	CPUFLAG=(-cpu "$CPU")
fi
# BENCHTIME=0.5s shortens each benchmark for CI gates; the default is the
# go test default (1s per benchmark).
BENCHTIME="${BENCHTIME:-}"
if [ -n "$BENCHTIME" ]; then
	CPUFLAG+=(-benchtime "$BENCHTIME")
fi
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Record the toolchain and parallelism the numbers were taken under, so
# baselines from different machines or Go releases are comparable (or at
# least visibly not). num_cpu is the machine; gomaxprocs is what the Go
# scheduler was actually allowed to use for this capture.
GO_VERSION=$(go version | awk '{print $3}')
NUM_CPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)
GOMAXPROCS_VAL="${GOMAXPROCS:-$NUM_CPU}"

echo "running benchmarks ($BENCH, count=$COUNT) ..." >&2
# ${arr[@]+...} keeps the empty-array expansion safe under `set -u` on
# bash < 4.4 (macOS ships 3.2).
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" ${CPUFLAG[@]+"${CPUFLAG[@]}"} . ./internal/engine/ | tee "$RAW" >&2

awk -v rev="$REV" -v gover="$GO_VERSION" -v gmp="$GOMAXPROCS_VAL" -v ncpu="$NUM_CPU" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    line = "    {\"rev\": \"" rev "\", \"go_version\": \"" gover "\", \"gomaxprocs\": " gmp ", \"num_cpu\": " ncpu ", \"name\": \"" name "\", \"iterations\": " iters
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        line = line ", \"" unit "\": " $(i)
    }
    line = line "}"
    if (!first) print ","
    printf "%s", line
    first = 0
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
