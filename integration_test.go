package repro

// Cross-module integration tests: the public API end to end on a matrix of
// graph families, problems, and algorithms; plus property-based tests on
// the system-level invariants that individual package tests cannot see.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/problems"
	"repro/internal/xrand"
)

// TestEndToEndMatrix runs every (problem, algorithm) pair on every oracle
// family and asserts feasibility plus the (1±ε) bound whenever local solves
// were exact.
func TestEndToEndMatrix(t *testing.T) {
	eps := 0.25
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", gen.Cycle(140)},
		{"btree", gen.CompleteDAryTree(2, 6)},
		{"grid", gen.Grid(10, 12)},
	}
	probs := []problems.Problem{problems.MIS, problems.MinVertexCover}
	algos := []core.Solver{core.SolverChangLi, core.SolverGKM}
	for _, fam := range families {
		for _, prob := range probs {
			for _, algo := range algos {
				opt := core.Options{Epsilon: eps, Algorithm: algo, Seed: 5, PrepRuns: 2}
				if algo == core.SolverGKM {
					opt.Scale = 0.4
				}
				rep, err := core.Solve(prob, fam.g, opt)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", fam.name, prob, algo, err)
				}
				if !rep.Feasible {
					t.Fatalf("%s/%v/%v: infeasible", fam.name, prob, algo)
				}
				if rep.Optimum <= 0 {
					continue
				}
				switch rep.Kind {
				case ilp.Packing:
					if rep.Exact && rep.Ratio < 1-eps-1e-9 {
						t.Fatalf("%s/%v/%v: ratio %.4f < 1-eps", fam.name, prob, algo, rep.Ratio)
					}
				case ilp.Covering:
					if rep.Exact && rep.Ratio > 1+eps+1e-9 {
						t.Fatalf("%s/%v/%v: ratio %.4f > 1+eps", fam.name, prob, algo, rep.Ratio)
					}
				}
			}
		}
	}
}

// TestDecompositionPartitionProperty: for random graphs and parameters,
// every decomposer yields a valid partition — separation holds, cluster ids
// are dense, and weak diameters are finite.
func TestDecompositionPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 40 + rng.Intn(120)
		g := gen.GNP(n, 3.0/float64(n), rng)
		eps := 0.1 + 0.4*rng.Float64()
		for _, algo := range []core.Decomposer{
			core.DecomposerChangLi, core.DecomposerElkinNeiman, core.DecomposerBlackbox,
		} {
			d, err := core.Decompose(g, core.DecomposeOptions{
				Epsilon: eps, Algorithm: algo, Seed: seed, Scale: 0.05,
			})
			if err != nil {
				return false
			}
			if ok, _, _ := d.ValidateSeparation(g); !ok {
				return false
			}
			for _, c := range d.ClusterOf {
				if c < -1 || int(c) >= d.NumClusters {
					return false
				}
			}
			if d.NumClusters > 0 && d.MaxWeakDiameter(g) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPackingFeasibilityProperty: on arbitrary random packing ILPs (not
// graph problems), the Theorem 1.2 solver always returns feasible
// solutions with nonnegative value.
func TestPackingFeasibilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(40)
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + int64(rng.Intn(4))
		}
		b := ilp.NewBuilder(ilp.Packing, w)
		cons := 3 + rng.Intn(10)
		for j := 0; j < cons; j++ {
			var terms []ilp.Term
			for v := 0; v < n; v++ {
				if rng.Bernoulli(0.15) {
					terms = append(terms, ilp.Term{Var: v, Coeff: float64(1 + rng.Intn(2))})
				}
			}
			b.AddConstraint(terms, float64(rng.Intn(4)))
		}
		inst, err := b.Build()
		if err != nil {
			return false
		}
		rep, err := core.SolveILP(inst, core.Options{Epsilon: 0.3, Seed: seed, PrepRuns: 2})
		if err != nil {
			return false
		}
		return rep.Feasible && rep.Value >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCoveringFeasibilityProperty mirrors the packing property for random
// covering ILPs (built to be satisfiable).
func TestCoveringFeasibilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(40)
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + int64(rng.Intn(4))
		}
		b := ilp.NewBuilder(ilp.Covering, w)
		cons := 3 + rng.Intn(10)
		for j := 0; j < cons; j++ {
			var terms []ilp.Term
			total := 0.0
			for v := 0; v < n; v++ {
				if rng.Bernoulli(0.2) {
					c := float64(1 + rng.Intn(2))
					terms = append(terms, ilp.Term{Var: v, Coeff: c})
					total += c
				}
			}
			if len(terms) == 0 {
				continue
			}
			b.AddConstraint(terms, float64(rng.Intn(int(total)+1)))
		}
		inst, err := b.Build()
		if err != nil {
			return false
		}
		rep, err := core.SolveILP(inst, core.Options{Epsilon: 0.3, Seed: seed, PrepRuns: 2})
		if err != nil {
			return false
		}
		return rep.Feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedIndependenceOfStructure: different seeds change the solution but
// never the feasibility or the validity of the decomposition — failure
// injection by seed sweeping on the adversarial family.
func TestSeedIndependenceOfStructure(t *testing.T) {
	g := gen.CliquePlusPath(60, 60)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 8; seed++ {
		d := ldd.ChangLi(g, ldd.Params{Epsilon: 0.2, Seed: seed})
		if ok, u, v := d.ValidateSeparation(g); !ok {
			t.Fatalf("seed %d: separation broken at %d-%d", seed, u, v)
		}
		rep, err := core.SolveILP(inst, core.Options{Epsilon: 0.25, Seed: seed, PrepRuns: 2})
		if err != nil || !rep.Feasible {
			t.Fatalf("seed %d: %v feasible=%v", seed, err, rep != nil && rep.Feasible)
		}
	}
}

// TestRepairComposesWithSolvers: decompose-with-repair then verify every
// cluster meets the target diameter — the Theorem 1.1 "ideal bound" path.
func TestRepairComposesWithSolvers(t *testing.T) {
	g := gen.Cycle(900)
	d, err := core.Decompose(g, core.DecomposeOptions{
		Epsilon: 0.3, Seed: 2, RepairDiameter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := d.ValidateSeparation(g); !ok {
		t.Fatal("separation broken after repair")
	}
	if sd := d.MaxStrongDiameter(g); sd < 0 {
		t.Fatal("repaired clusters must be connected")
	}
	if d.UnclusteredFraction() > 0.3 {
		t.Fatalf("repair deleted too much: %.3f", d.UnclusteredFraction())
	}
}
