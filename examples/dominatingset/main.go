// Example: k-distance dominating set on a torus network — the motivating
// example of the paper's Definition 1.3.
//
//	go run ./examples/dominatingset
//
// A monitoring service must place probes so that every node has a probe
// within k hops, minimizing probes. That is exactly the minimum k-distance
// dominating set: a covering ILP whose constraint hypergraph has one
// hyperedge N^k(v) per vertex. One communication round on that hypergraph
// costs k rounds on the real network; the example reports both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/hypergraph"
	"repro/internal/problems"
)

func main() {
	g := gen.Torus(16, 16) // a 256-node wraparound mesh
	for _, k := range []int{1, 2, 3} {
		inst, err := problems.BuildK(k, g, nil)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.SolveILP(inst, core.Options{Epsilon: 0.3, Seed: 7, PrepRuns: 2})
		if err != nil {
			log.Fatal(err)
		}
		if !problems.VerifyK(problems.KDominatingSet, k, g, rep.Solution) {
			log.Fatalf("k=%d: output is not a %d-dominating set", k, k)
		}
		// Packing lower bound: a probe covers at most |N^k| nodes.
		ball := len(g.Ball(0, k))
		lb := (g.N() + ball - 1) / ball
		// Definition 1.3: simulating the hypergraph costs k rounds per round.
		h := inst.Hypergraph()
		simCost := hypergraph.SimulationCost(g, h)
		fmt.Printf("k=%d: probes=%d (lower bound %d, ratio %.2f), hyper-rounds=%d, base-graph rounds=%d (x%d per Def. 1.3)\n",
			k, rep.Value, lb, float64(rep.Value)/float64(lb), rep.Rounds, rep.Rounds*simCost, simCost)
	}
}
