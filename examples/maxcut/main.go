// Example: approximate MaxCut via low-diameter decomposition, and the
// matching lower bound.
//
//	go run ./examples/maxcut
//
// MaxCut is one of the four problems of Theorem 1.4. The decomposition
// recipe from Section 1.1 applies: decompose with parameter ε, solve each
// cluster's MaxCut exactly (here: clusters of a bipartite graph, where the
// 2-coloring cuts every edge), assign deleted vertices greedily. Only the
// O(ε·m) edges incident to deleted vertices can be lost, so the cut is
// (1-O(ε))-optimal on bipartite graphs where OPT = m.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func main() {
	g := gen.Grid(25, 25) // bipartite: OPT = m
	eps := 0.15
	dec, err := core.Decompose(g, core.DecomposeOptions{Epsilon: eps, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Per-cluster exact MaxCut via 2-coloring (clusters of a bipartite graph
	// are bipartite); deleted vertices then pick their majority-improving
	// side greedily.
	side := make([]int8, g.N())
	for i := range side {
		side[i] = -1
	}
	for _, cluster := range dec.Clusters() {
		sub, back := g.Induced(cluster)
		ok, coloring := sub.IsBipartite()
		if !ok {
			log.Fatal("cluster of a bipartite graph must be bipartite")
		}
		for i, c := range coloring {
			side[back[i]] = c
		}
	}
	for v := 0; v < g.N(); v++ {
		if side[v] != -1 {
			continue
		}
		// Greedy: join the side cutting more incident edges.
		count := [2]int{}
		for _, w := range g.Neighbors(v) {
			if side[w] >= 0 {
				count[side[w]]++
			}
		}
		if count[0] >= count[1] {
			side[v] = 1
		} else {
			side[v] = 0
		}
	}
	cut := cutSize(g, side)
	fmt.Printf("graph: %v (bipartite, OPT = %d)\n", g, g.M())
	fmt.Printf("decomposition: %d clusters, %.1f%% deleted\n",
		dec.NumClusters, 100*dec.UnclusteredFraction())
	fmt.Printf("cut: %d of %d edges = %.4f of OPT (target >= %.2f)\n",
		cut, g.M(), float64(cut)/float64(g.M()), 1-2*eps)
	fmt.Println()
	fmt.Println("lower bound (Thm B.6/B.7): no o(log n / eps)-round algorithm reaches (1-eps)·OPT")
	fmt.Println("on all graphs — see cmd/lowerbound for the indistinguishability experiment.")
}

func cutSize(g *graph.Graph, side []int8) int {
	cut := 0
	g.Edges(func(u, v int) {
		if side[u] != side[v] {
			cut++
		}
	})
	return cut
}
