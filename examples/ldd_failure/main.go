// Example: why "in expectation" is not enough — Appendix C live.
//
//	go run ./examples/ldd_failure
//
// The Elkin–Neiman decomposition guarantees E[deleted] <= ε·n, and that is
// the guarantee every pre-2023 algorithm gave. Claim C.1 exhibits a family
// (a clique with a path tail) on which the realized deletion count exceeds
// ε·n — in fact deletes nearly the whole clique — with probability Ω(ε).
// The paper's Theorem 1.1 algorithm closes exactly this gap: its ε·n bound
// holds with probability 1 - 1/poly(n).
//
// This example runs both on the adversarial family and prints the failure
// frequencies side by side.
package main

import (
	"fmt"

	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/stats"
)

func main() {
	const n = 400
	g := gen.CliquePlusPath(n/2, n/2)
	eps := 0.2
	fmt.Printf("adversarial family: clique(%d) + path(%d), eps = %.2f\n", n/2, n/2, eps)

	const trials = 200
	enFail := stats.FailureRate(trials, func(trial int) bool {
		d := ldd.ElkinNeiman(g, nil, ldd.ENParams{Lambda: eps, Seed: uint64(trial) * 101})
		return d.UnclusteredFraction() > eps
	})
	clFail := stats.FailureRate(trials/4, func(trial int) bool {
		d := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: uint64(trial) * 103})
		return d.UnclusteredFraction() > eps
	})
	fmt.Printf("Elkin–Neiman (expectation-only): Pr[deleted > eps*n] ≈ %.3f  (theory: Omega(eps) ≈ %.2f-ish)\n", enFail, eps)
	fmt.Printf("Chang–Li     (high probability): Pr[deleted > eps*n] ≈ %.3f  (theory: 1/poly(n) ≈ 0)\n", clFail)

	// Show one concrete failure: find a seed where EN16 blows up.
	for seed := uint64(0); seed < 1000; seed++ {
		d := ldd.ElkinNeiman(g, nil, ldd.ENParams{Lambda: eps, Seed: seed})
		if d.UnclusteredFraction() > eps {
			fmt.Printf("\nconcrete failure at seed %d: EN16 deleted %d of %d vertices (%.1f%% > %.0f%%)\n",
				seed, d.UnclusteredCount(), g.N(), 100*d.UnclusteredFraction(), 100*eps)
			cl := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: seed})
			fmt.Printf("Chang–Li at the same seed: deleted %d (%.1f%%), %d clusters\n",
				cl.UnclusteredCount(), 100*cl.UnclusteredFraction(), cl.NumClusters)
			break
		}
	}
}
