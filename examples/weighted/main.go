// Example: the extensions — weighted decomposition and the Section-4
// alternative packing pipeline.
//
//	go run ./examples/weighted
//
// The end of Section 4 sketches an alternative proof of Theorem 1.2
// (credited to an anonymous reviewer): run Θ(ε⁻² log n) ordinary
// decompositions in parallel, reweight every variable by how often it
// appears in the induced packing solutions, then run a *weighted*
// low-diameter decomposition against those proxy weights. Both building
// blocks are implemented here:
//
//   - ldd.ChangLiWeighted bounds the *deleted weight* by ε·Σw w.h.p. — the
//     first part demonstrates it protecting a few very heavy vertices that
//     an unweighted carve would happily delete;
//   - packing.SolveAlternative runs the full pipeline on a MIS instance.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/packing"
	"repro/internal/problems"
)

func main() {
	// Part 1: weighted decomposition. A long cycle with heavy "data
	// centers" every 100 hops; deleting one costs as much as 500 ordinary
	// vertices.
	g := gen.Cycle(3000)
	w := make([]int64, g.N())
	var total int64
	for i := range w {
		w[i] = 1
		if i%100 == 0 {
			w[i] = 500
		}
		total += w[i]
	}
	eps := 0.2
	dec := ldd.ChangLiWeighted(g, w, ldd.Params{Epsilon: eps, Seed: 8, Scale: 0.002})
	fmt.Printf("weighted LDD on C3000 with 30 heavy vertices (total weight %d):\n", total)
	fmt.Printf("  clusters=%d, deleted vertices=%d, deleted WEIGHT=%d (budget %.0f)\n",
		dec.NumClusters, dec.UnclusteredCount(), dec.DeletedWeight(w), eps*float64(total))

	// Part 2: the alternative packing pipeline on MIS.
	cyc := gen.Cycle(300)
	inst, err := problems.Build(problems.MIS, cyc, nil)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := problems.ExactOptimum(problems.MIS, cyc)
	if err != nil {
		log.Fatal(err)
	}
	main1 := packing.Solve(inst, packing.Params{Epsilon: eps, Seed: 8, PrepRuns: 3})
	alt := packing.SolveAlternative(inst, packing.Params{Epsilon: eps, Seed: 8}, 8)
	fmt.Printf("\nMIS on C300 (optimum %d):\n", opt)
	fmt.Printf("  main Theorem 1.2 pipeline:   value=%d (ratio %.3f)\n",
		main1.Value, float64(main1.Value)/float64(opt))
	fmt.Printf("  Section-4 alternative:       value=%d (ratio %.3f)\n",
		alt.Value, float64(alt.Value)/float64(opt))
	fmt.Printf("both within the (1-ε) = %.2f target: %v\n",
		1-eps,
		float64(main1.Value) >= (1-eps)*float64(opt) && float64(alt.Value) >= (1-eps)*float64(opt))
}
