// Quickstart: decompose a graph and solve a packing problem in ~20 lines.
//
//	go run ./examples/quickstart
//
// This walks the two headline capabilities of the library: a low-diameter
// decomposition with a with-high-probability guarantee (Theorem 1.1), and a
// (1-ε)-approximate maximum independent set (Theorem 1.2), scored against
// the exact optimum.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/problems"
)

func main() {
	// A 30x30 grid network: 900 vertices.
	g := gen.Grid(30, 30)

	// 1. Low-diameter decomposition: at most 20% of vertices unclustered,
	//    with high probability (not just in expectation).
	dec, err := core.Decompose(g, core.DecomposeOptions{Epsilon: 0.2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition: %d clusters, %.1f%% unclustered, %d LOCAL rounds\n",
		dec.NumClusters, 100*dec.UnclusteredFraction(), dec.Rounds)

	// 2. (1-ε)-approximate maximum independent set.
	rep, err := core.Solve(problems.MIS, g, core.Options{Epsilon: 0.2, Seed: 42, PrepRuns: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIS: value %d vs optimum %d (ratio %.3f, target >= %.2f), feasible=%v\n",
		rep.Value, rep.Optimum, rep.Ratio, 0.8, rep.Feasible)
}
