// Example: the LOCAL model substrate itself — vertex programs as
// goroutines exchanging messages over the graph.
//
//	go run ./examples/messagepassing
//
// Everything else in this repository simulates LOCAL algorithms through a
// ball-gathering oracle with round accounting. This example shows the
// other half of the substrate: ldd.ElkinNeimanDistributed runs the Lemma
// C.1 decomposition as an honest synchronous message-passing protocol on
// internal/local's engine (one vertex program per vertex, goroutine
// workers between round barriers), and its output is bit-identical to the
// oracle implementation given the same seed. The engine also audits
// message sizes: when several sources' labels ride in one round's batch the
// protocol exceeds the O(log n)-bit CONGEST budget, correctly classifying
// it as a LOCAL-model protocol.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph/gen"
	"repro/internal/ldd"
)

func main() {
	g := gen.Torus(14, 14)
	p := ldd.ENParams{Lambda: 0.25, Seed: 99}

	oracle := ldd.ElkinNeiman(g, nil, p)
	dist, stats, err := ldd.ElkinNeimanDistributed(g, p, false /* parallel executor */)
	if err != nil {
		log.Fatal(err)
	}

	same := true
	for v := range oracle.ClusterOf {
		if oracle.ClusterOf[v] != dist.ClusterOf[v] {
			same = false
			break
		}
	}
	fmt.Printf("network: %v\n", g)
	fmt.Printf("oracle:      %d clusters, %d unclustered, %d rounds (charged)\n",
		oracle.NumClusters, oracle.UnclusteredCount(), oracle.Rounds)
	fmt.Printf("distributed: %d clusters, %d unclustered, %d rounds (executed)\n",
		dist.NumClusters, dist.UnclusteredCount(), dist.Rounds)
	fmt.Printf("outputs bit-identical: %v\n", same)
	fmt.Printf("engine stats: %d messages delivered, max message %d bits, fits CONGEST: %v\n",
		stats.Messages, stats.MaxMessageBits, stats.CongestOK)
	fmt.Println()
	fmt.Println("the same protocol on a clique (the within-1 window prunes almost every label,")
	fmt.Println("so the batches stay small there):")
	k := gen.Complete(60)
	_, kstats, err := ldd.ElkinNeimanDistributed(k, p, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine stats: %d messages, max message %d bits, fits CONGEST: %v\n",
		kstats.Messages, kstats.MaxMessageBits, kstats.CongestOK)
}
