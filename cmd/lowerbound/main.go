// Command lowerbound runs the Appendix B indistinguishability experiment
// behind Theorem 1.4: a t-round LOCAL algorithm cannot distinguish two
// high-girth regular graphs below the girth radius, so its per-vertex MIS
// inclusion rate is identical on both — even though their independence
// numbers differ. It also demonstrates the Theorem B.3 subdivision scaling:
// at a fixed round budget, approximation quality degrades linearly in the
// subdivision parameter x ~ 1/ε.
//
// Usage:
//
//	lowerbound [-n 400] [-trials 200] [-maxt 6] [-seed 1] [-timeout 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/graph/gen"
	"repro/internal/lower"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	n := fs.Int("n", 400, "cycle length (even); the odd twin has n+1 vertices")
	trials := fs.Int("trials", 200, "trials per rate estimate")
	maxT := fs.Int("maxt", 6, "largest round budget to test")
	seed := fs.Uint64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 0, "deadline for the whole experiment (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *n%2 != 0 {
		*n++
	}
	bip := gen.Cycle(*n)
	odd := gen.Cycle(*n + 1)
	fmt.Fprintf(w, "graphs: C%d (alpha/n = 0.5) vs C%d (alpha/n = %.4f)\n",
		*n, *n+1, float64(*n/2)/float64(*n+1))
	fmt.Fprintf(w, "%4s  %12s  %12s  %10s  %14s\n", "t", "rate(even)", "rate(odd)", "|diff|", "deficit vs opt")
	for t := 1; t <= *maxT; t++ {
		if !lower.BallIsomorphic(bip, t) || !lower.BallIsomorphic(odd, t) {
			fmt.Fprintf(w, "%4d  (t exceeds girth/2; balls no longer trees)\n", t)
			continue
		}
		rateA, err := lower.InclusionRateCtx(ctx, bip, t, *trials, *seed+uint64(t))
		if err != nil {
			return deadlineErr(err, *timeout)
		}
		rateB, err := lower.InclusionRateCtx(ctx, odd, t, *trials, *seed+uint64(t)+1000)
		if err != nil {
			return deadlineErr(err, *timeout)
		}
		fmt.Fprintf(w, "%4d  %12.4f  %12.4f  %10.4f  %14.4f\n",
			t, rateA, rateB, math.Abs(rateA-rateB), 0.5-rateA)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "subdivision scaling (Theorem B.3): 3-round MIS rate on C60 subdivided by 2x")
	base := gen.Cycle(60)
	for _, x := range []int{0, 1, 2, 4, 8} {
		gx := lower.SubdivideForMIS(base, x)
		rate, err := lower.InclusionRateCtx(ctx, gx, 3, *trials/2, *seed+uint64(x)*77)
		if err != nil {
			return deadlineErr(err, *timeout)
		}
		fmt.Fprintf(w, "  x=%d: n=%d rate=%.4f ratio-to-opt=%.4f\n", x, gx.N(), rate, rate/0.5)
	}
	fmt.Fprintln(w, "interpretation: fixed-round algorithms fall further from optimal as x ~ 1/eps grows,")
	fmt.Fprintln(w, "matching the Omega(log n / eps) lower bound of Theorem 1.4.")
	return nil
}

// deadlineErr annotates context errors with the configured deadline.
func deadlineErr(err error, timeout time.Duration) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("experiment exceeded the %v deadline: %w", timeout, err)
	}
	return err
}
