package main

import (
	"io"
	"testing"
)

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "60", "-trials", "20", "-maxt", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOddNRoundsUp(t *testing.T) {
	if err := run([]string{"-n", "61", "-trials", "10", "-maxt", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
