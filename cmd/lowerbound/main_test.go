package main

import (
	"io"
	"testing"
)

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "60", "-trials", "20", "-maxt", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOddNRoundsUp(t *testing.T) {
	if err := run([]string{"-n", "61", "-trials", "10", "-maxt", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunDeadline(t *testing.T) {
	err := run([]string{"-n", "400", "-trials", "5000", "-maxt", "6", "-timeout", "1ns"}, io.Discard)
	if err == nil {
		t.Fatal("1ns deadline did not abort the experiment")
	}
}
