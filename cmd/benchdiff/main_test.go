package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBase = `[
    {"rev": "aaa", "name": "BenchmarkFoo-8", "iterations": 10, "ns_per_op": 1000, "B_per_op": 512, "allocs_per_op": 10},
    {"rev": "aaa", "name": "BenchmarkBar-8", "iterations": 10, "ns_per_op": 2000, "B_per_op": 0, "allocs_per_op": 0},
    {"rev": "aaa", "name": "BenchmarkGone-8", "iterations": 5, "ns_per_op": 50}
]`

func TestDiffNoRegression(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", oldBase)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "bbb", "name": "BenchmarkFoo-8", "iterations": 10, "ns_per_op": 900, "B_per_op": 256, "allocs_per_op": 5},
        {"rev": "bbb", "name": "BenchmarkBar-8", "iterations": 10, "ns_per_op": 2100, "B_per_op": 0, "allocs_per_op": 0},
        {"rev": "bbb", "name": "BenchmarkNew-8", "iterations": 5, "ns_per_op": 1}
    ]`)
	var out strings.Builder
	reg, err := run([]string{o, n}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reg != 0 {
		t.Fatalf("reported %d regressions within threshold:\n%s", reg, out.String())
	}
	for _, want := range []string{"BenchmarkFoo-8", "-10.0%", "removed (only in " + o + "): BenchmarkGone-8", "added (only in " + n + "): BenchmarkNew-8"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDiffRegressionExceedsThreshold(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", oldBase)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "bbb", "name": "BenchmarkFoo-8", "iterations": 10, "ns_per_op": 1500, "B_per_op": 512, "allocs_per_op": 10},
        {"rev": "bbb", "name": "BenchmarkBar-8", "iterations": 10, "ns_per_op": 2000, "B_per_op": 0, "allocs_per_op": 0}
    ]`)
	var out strings.Builder
	reg, err := run([]string{o, n}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if reg != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", reg, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}
	// A looser threshold passes the same pair.
	reg, err = run([]string{"-threshold", "0.6", o, n}, io.Discard)
	if err != nil || reg != 0 {
		t.Fatalf("threshold 0.6: reg=%d err=%v", reg, err)
	}
}

func TestAveragesRepeatedRuns(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", `[
        {"rev": "a", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 100},
        {"rev": "a", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 300}
    ]`)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "b", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 210}
    ]`)
	// Mean old = 200; 210 is a 5% regression, under the default 10%.
	reg, err := run([]string{o, n}, io.Discard)
	if err != nil || reg != 0 {
		t.Fatalf("reg=%d err=%v", reg, err)
	}
	reg, err = run([]string{"-threshold", "0.01", o, n}, io.Discard)
	if err != nil || reg != 1 {
		t.Fatalf("tight threshold: reg=%d err=%v", reg, err)
	}
}

func TestMixedGomaxprocsRowsAreSegregated(t *testing.T) {
	dir := t.TempDir()
	// One baseline holding rows captured under different GOMAXPROCS: these
	// measure different machine shapes and must not melt into one mean.
	o := writeBaseline(t, dir, "old.json", `[
        {"rev": "a", "gomaxprocs": 1, "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 1000},
        {"rev": "a", "gomaxprocs": 4, "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 100}
    ]`)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "b", "gomaxprocs": 1, "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 1000},
        {"rev": "b", "gomaxprocs": 4, "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 200}
    ]`)
	// The 4-CPU group doubled (100 -> 200). Blended means would show
	// 550 -> 600 (+9%), sliding under the default 10% gate.
	var out strings.Builder
	reg, err := run([]string{o, n}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if reg != 1 {
		t.Fatalf("want the gomaxprocs=4 regression caught, got %d:\n%s", reg, out.String())
	}
	for _, want := range []string{"[gomaxprocs=1]", "[gomaxprocs=4]"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing segregated group %q:\n%s", want, out.String())
		}
	}
}

func TestMemAverageIgnoresRowsWithoutMemFields(t *testing.T) {
	dir := t.TempDir()
	// One -benchmem row (B/op 512) and one plain row: the average must be
	// 512, not 256.
	o := writeBaseline(t, dir, "old.json", `[
        {"rev": "a", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 100, "B_per_op": 512, "allocs_per_op": 4},
        {"rev": "a", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 100}
    ]`)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "b", "name": "BenchmarkFoo-8", "iterations": 1, "ns_per_op": 100, "B_per_op": 512, "allocs_per_op": 4}
    ]`)
	var out strings.Builder
	if _, err := run([]string{o, n}, &out); err != nil {
		t.Fatal(err)
	}
	// Equal true averages: the B/op delta must be +0.0%, which only holds
	// if the divisor was the mem-carrying run count.
	if !strings.Contains(out.String(), "+0.0%") {
		t.Fatalf("mem average wrong:\n%s", out.String())
	}
}

// TestTailMetricGate pins the churn-benchmark gate: a p99_ns regression or
// a hit_rate drop beyond the threshold fails the diff even when ns/op is
// flat, and the -json report carries the tail metrics plus the reasons.
func TestTailMetricGate(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", `[
        {"rev": "a", "name": "BenchmarkEngineChurnRepair", "iterations": 100, "ns_per_op": 70000, "hit_rate": 0.99, "p99_ns": 150000}
    ]`)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "b", "name": "BenchmarkEngineChurnRepair", "iterations": 100, "ns_per_op": 70000, "hit_rate": 0.80, "p99_ns": 3000000}
    ]`)
	var out strings.Builder
	reg, err := run([]string{"-json", o, n}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if reg != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", reg, out.String())
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &row); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if row["regression"] != true {
		t.Fatalf("regression not flagged: %v", row)
	}
	reasons := fmt.Sprint(row["regression_reasons"])
	for _, want := range []string{"p99_ns", "hit_rate"} {
		if !strings.Contains(reasons, want) {
			t.Fatalf("reasons %q missing %q", reasons, want)
		}
	}
	if row["hit_rate_old"].(float64) != 0.99 || row["p99_ns_new"].(float64) != 3000000 {
		t.Fatalf("tail metrics missing from JSON: %v", row)
	}
	// Table mode flags the same pair and shows the tail columns.
	var tbl strings.Builder
	if reg, err = run([]string{o, n}, &tbl); err != nil || reg != 1 {
		t.Fatalf("table mode: reg=%d err=%v", reg, err)
	}
	for _, want := range []string{"REGRESSION", "0.990->0.800"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
	// An old baseline without tail metrics never trips the tail gate.
	plain := writeBaseline(t, dir, "plain.json", `[
        {"rev": "c", "name": "BenchmarkEngineChurnRepair", "iterations": 100, "ns_per_op": 70000}
    ]`)
	if reg, err = run([]string{plain, n}, io.Discard); err != nil || reg != 0 {
		t.Fatalf("tail-less old baseline: reg=%d err=%v", reg, err)
	}
}

func TestDiffErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeBaseline(t, dir, "good.json", oldBase)
	bad := writeBaseline(t, dir, "bad.json", "{not json")
	noName := writeBaseline(t, dir, "noname.json", `[{"ns_per_op": 5}]`)
	noNs := writeBaseline(t, dir, "nons.json", `[{"name": "BenchmarkX-8"}]`)
	empty := writeBaseline(t, dir, "empty.json", `[]`)
	for _, args := range [][]string{
		{good},
		{good, bad},
		{good, noName},
		{good, noNs},
		{empty, empty},
		{good, filepath.Join(dir, "missing.json")},
		{"-threshold", "-1", good, good},
	} {
		if _, err := run(args, io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestDisjointBaselinesDoNotFail pins the added/removed satellite: a
// benchmark present in only one baseline is reported and the diff
// continues with exit status 0, even when nothing is common.
func TestDisjointBaselinesDoNotFail(t *testing.T) {
	dir := t.TempDir()
	good := writeBaseline(t, dir, "good.json", oldBase)
	disjoint := writeBaseline(t, dir, "disjoint.json", `[{"name": "BenchmarkOther-8", "ns_per_op": 5}]`)
	var out strings.Builder
	regressions, err := run([]string{good, disjoint}, &out)
	if err != nil {
		t.Fatalf("disjoint baselines failed: %v", err)
	}
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	for _, want := range []string{"no common benchmarks", "added (only in " + disjoint + "): BenchmarkOther-8"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestJSONMode pins the -json NDJSON report: one valid JSON object per
// benchmark, common entries carrying old/new metrics and the fractional
// delta, one-sided entries tagged added/removed, and the same regression
// accounting as the table.
func TestJSONMode(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", oldBase)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "bbb", "name": "BenchmarkFoo-8", "iterations": 10, "ns_per_op": 1500, "B_per_op": 512, "allocs_per_op": 10},
        {"rev": "bbb", "name": "BenchmarkBar-8", "iterations": 10, "ns_per_op": 2000, "B_per_op": 0, "allocs_per_op": 0},
        {"rev": "bbb", "name": "BenchmarkNew-8", "iterations": 5, "ns_per_op": 1}
    ]`)
	var out strings.Builder
	reg, err := run([]string{"-json", o, n}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reg != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", reg, out.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	byName := map[string]map[string]any{}
	for i, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		byName[row["name"].(string)] = row
	}
	if len(byName) != 4 {
		t.Fatalf("want 4 records, got %d:\n%s", len(byName), out.String())
	}
	foo := byName["BenchmarkFoo-8"]
	if foo["status"] != "common" || foo["regression"] != true {
		t.Fatalf("Foo record: %v", foo)
	}
	if d := foo["delta"].(float64); d < 0.49 || d > 0.51 {
		t.Fatalf("Foo delta = %v, want 0.5", d)
	}
	if foo["b_per_op_new"].(float64) != 512 {
		t.Fatalf("Foo mem fields: %v", foo)
	}
	if bar := byName["BenchmarkBar-8"]; bar["regression"] != false || bar["delta"].(float64) != 0 {
		t.Fatalf("Bar record: %v", bar)
	}
	if gone := byName["BenchmarkGone-8"]; gone["status"] != "removed" || gone["ns_per_op_new"] != nil {
		t.Fatalf("Gone record: %v", gone)
	}
	if nw := byName["BenchmarkNew-8"]; nw["status"] != "added" || nw["ns_per_op_old"] != nil {
		t.Fatalf("New record: %v", nw)
	}
}

func TestGomaxprocsMismatchWarnsNotFails(t *testing.T) {
	dir := t.TempDir()
	o := writeBaseline(t, dir, "old.json", `[
        {"rev": "aaa", "gomaxprocs": 1, "name": "BenchmarkFoo", "iterations": 10, "ns_per_op": 1000}
    ]`)
	n := writeBaseline(t, dir, "new.json", `[
        {"rev": "bbb", "gomaxprocs": 4, "name": "BenchmarkFoo", "iterations": 10, "ns_per_op": 1050}
    ]`)
	var out strings.Builder
	reg, err := run([]string{o, n}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reg != 0 {
		t.Fatalf("GOMAXPROCS mismatch must warn, not fail: %d regressions\n%s", reg, out.String())
	}
	if !strings.Contains(out.String(), "different GOMAXPROCS") {
		t.Fatalf("warning missing:\n%s", out.String())
	}

	// Matching values (and baselines without the field) stay silent.
	same := writeBaseline(t, dir, "same.json", `[
        {"rev": "ccc", "gomaxprocs": 4, "name": "BenchmarkFoo", "iterations": 10, "ns_per_op": 1050}
    ]`)
	legacy := writeBaseline(t, dir, "legacy.json", `[
        {"rev": "ddd", "name": "BenchmarkFoo", "iterations": 10, "ns_per_op": 1050}
    ]`)
	for _, pair := range [][2]string{{n, same}, {legacy, n}, {n, legacy}} {
		out.Reset()
		if _, err := run([]string{pair[0], pair[1]}, &out); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(out.String(), "GOMAXPROCS") {
			t.Fatalf("unexpected warning for %v:\n%s", pair, out.String())
		}
	}
}
