// Command benchdiff compares two BENCH_<rev>.json baselines produced by
// bench_baseline.sh and prints the per-benchmark ns/op, B/op, and allocs/op
// deltas, plus the tail metrics the churn benchmarks report (hit_rate,
// p99_ns) when both baselines carry them. With -threshold t (default
// 0.10), any benchmark whose ns/op or p99_ns regressed by more than t (as
// a fraction), or whose hit_rate dropped by more than t, makes the command
// exit with status 1, so CI can gate on latency tails and repair
// effectiveness, not just the mean. Benchmarks present in only one
// baseline are reported as added/removed and never fail the diff — a new
// benchmark in HEAD must not break comparisons against older baselines.
//
// -json switches the report to NDJSON: one object per benchmark with the
// averaged old/new metrics (including hit_rate/p99_ns when present), the
// relative ns/op delta as a fraction, the regression verdict, and the
// metrics that tripped it (added/removed benchmarks carry a status field
// instead), so dashboards and scripts consume the diff without scraping the
// table. The exit status is the same in both modes.
//
// Baselines record the GOMAXPROCS they were captured under; when the two
// files disagree, benchdiff prints a warning (stderr in -json mode) but
// never fails on it — a 1-CPU baseline against a 4-CPU run measures the
// machine, not the change, and the reader should know that. Rows mixing
// GOMAXPROCS *within* one file are segregated by (name, gomaxprocs) and
// reported as separate "name [gomaxprocs=N]" entries rather than averaged
// into a mean nobody measured.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.05 BENCH_45564de.json BENCH_head.json
//	benchdiff -json old.json new.json | jq 'select(.regression)'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}

// record is one benchmark's averaged metrics from one baseline file. Memory
// metrics keep their own run count: a baseline mixing -benchmem and plain
// rows for one benchmark must average each metric over the rows that
// actually carried it.
type record struct {
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
	hitRate     float64
	p99Ns       float64
	runs        int
	memRuns     int
	rateRuns    int
	p99Runs     int
}

func (r *record) hasMem() bool  { return r.memRuns > 0 }
func (r *record) hasRate() bool { return r.rateRuns > 0 }
func (r *record) hasP99() bool  { return r.p99Runs > 0 }

// loadBaseline parses a bench_baseline.sh JSON file, averaging repeated
// entries for the same benchmark (COUNT > 1 runs). Rows are segregated by
// (name, gomaxprocs) before averaging: a 1-CPU row and a 4-CPU row for the
// same benchmark measure different machines, and folding them into one
// mean would fabricate a number nobody ran. When a name appears under a
// single gomaxprocs, it keys the result map as-is; under several, each
// group gets a "name [gomaxprocs=N]" key so the groups diff independently.
// The second return is the sorted set of distinct gomaxprocs values the
// rows were captured under (empty for baselines predating that field).
func loadBaseline(path string) (map[string]*record, []int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	type rowKey struct {
		name string
		gmp  int
	}
	gset := make(map[int]bool)
	gmpsOf := make(map[string]map[int]bool)
	agg := make(map[rowKey]*record)
	for i, row := range rows {
		name, ok := row["name"].(string)
		if !ok {
			return nil, nil, fmt.Errorf("%s: entry %d has no benchmark name", path, i)
		}
		ns, ok := row["ns_per_op"].(float64)
		if !ok {
			return nil, nil, fmt.Errorf("%s: %s has no ns_per_op", path, name)
		}
		gmp := 0
		if g, ok := row["gomaxprocs"].(float64); ok && g > 0 {
			gmp = int(g)
			gset[gmp] = true
		}
		if gmpsOf[name] == nil {
			gmpsOf[name] = make(map[int]bool)
		}
		gmpsOf[name][gmp] = true
		r := agg[rowKey{name, gmp}]
		if r == nil {
			r = &record{}
			agg[rowKey{name, gmp}] = r
		}
		r.nsPerOp += ns
		if b, ok := row["B_per_op"].(float64); ok {
			r.bPerOp += b
			if a, ok := row["allocs_per_op"].(float64); ok {
				r.allocsPerOp += a
			}
			r.memRuns++
		}
		if h, ok := row["hit_rate"].(float64); ok {
			r.hitRate += h
			r.rateRuns++
		}
		if p, ok := row["p99_ns"].(float64); ok {
			r.p99Ns += p
			r.p99Runs++
		}
		r.runs++
	}
	out := make(map[string]*record, len(agg))
	for k, r := range agg {
		r.nsPerOp /= float64(r.runs)
		if r.memRuns > 0 {
			r.bPerOp /= float64(r.memRuns)
			r.allocsPerOp /= float64(r.memRuns)
		}
		if r.rateRuns > 0 {
			r.hitRate /= float64(r.rateRuns)
		}
		if r.p99Runs > 0 {
			r.p99Ns /= float64(r.p99Runs)
		}
		key := k.name
		if len(gmpsOf[k.name]) > 1 {
			key = fmt.Sprintf("%s [gomaxprocs=%d]", k.name, k.gmp)
		}
		out[key] = r
	}
	gmp := make([]int, 0, len(gset))
	for g := range gset {
		gmp = append(gmp, g)
	}
	sort.Ints(gmp)
	return out, gmp, nil
}

// gomaxprocsWarning renders the mismatch warning when the two baselines
// were captured under different GOMAXPROCS: ns/op deltas then partly
// measure machine shape, not the code change, so the diff warns instead
// of gating. Baselines predating the gomaxprocs field never warn.
func gomaxprocsWarning(old, new []int) string {
	if len(old) == 0 || len(new) == 0 || slices.Equal(old, new) {
		return ""
	}
	return fmt.Sprintf("warning: baselines captured under different GOMAXPROCS (old %v, new %v); ns/op deltas partly reflect parallelism, not the code change", old, new)
}

// delta formats a relative change; new baselines of 0 against old 0 are a
// wash, anything growing from 0 is reported as absolute.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return fmt.Sprintf("+%g (from 0)", new)
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// regressReasons lists the metrics that regressed beyond the threshold for
// one benchmark pair: ns/op or p99_ns growing past it, or hit_rate falling
// past it. Tail metrics are judged only when both baselines carry them —
// an old baseline without churn benchmarks cannot fail the new gate.
func regressReasons(o, n *record, threshold float64) []string {
	var rs []string
	if o.nsPerOp > 0 && (n.nsPerOp-o.nsPerOp)/o.nsPerOp > threshold {
		rs = append(rs, "ns/op")
	}
	if o.hasP99() && n.hasP99() && o.p99Ns > 0 && (n.p99Ns-o.p99Ns)/o.p99Ns > threshold {
		rs = append(rs, "p99_ns")
	}
	if o.hasRate() && n.hasRate() && o.hitRate > 0 && (o.hitRate-n.hitRate)/o.hitRate > threshold {
		rs = append(rs, "hit_rate")
	}
	return rs
}

func run(args []string, w io.Writer) (regressions int, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(w)
	threshold := fs.Float64("threshold", 0.10, "ns/op regression fraction that fails the diff")
	asJSON := fs.Bool("json", false, "emit NDJSON delta records instead of the table")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("want exactly two baseline files, got %d", fs.NArg())
	}
	if *threshold < 0 {
		return 0, fmt.Errorf("threshold must be >= 0")
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldBase, oldGMP, err := loadBaseline(oldPath)
	if err != nil {
		return 0, err
	}
	newBase, newGMP, err := loadBaseline(newPath)
	if err != nil {
		return 0, err
	}
	if warn := gomaxprocsWarning(oldGMP, newGMP); warn != "" {
		// In -json mode the warning goes to stderr so stdout stays NDJSON.
		if *asJSON {
			fmt.Fprintln(os.Stderr, warn)
		} else {
			fmt.Fprintln(w, warn)
		}
	}

	names := make([]string, 0, len(oldBase))
	for name := range oldBase {
		if _, ok := newBase[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(oldBase) == 0 && len(newBase) == 0 {
		return 0, fmt.Errorf("no benchmarks in either %s or %s", oldPath, newPath)
	}
	if *asJSON {
		return runJSON(w, names, oldBase, newBase, *threshold)
	}
	if len(names) == 0 {
		fmt.Fprintf(w, "no common benchmarks between %s and %s; only added/removed entries follow\n", oldPath, newPath)
	}

	tw := newTabWriter(w)
	fmt.Fprintf(tw, "benchmark\tns/op old\tns/op new\tdelta\tB/op\tallocs/op\tp99\thit_rate\n")
	for _, name := range names {
		o, n := oldBase[name], newBase[name]
		mark := ""
		if reasons := regressReasons(o, n, *threshold); len(reasons) > 0 {
			regressions++
			mark = "  << REGRESSION (" + strings.Join(reasons, ", ") + ")"
		}
		memCols := "-\t-"
		if o.hasMem() && n.hasMem() {
			memCols = fmt.Sprintf("%s\t%s", delta(o.bPerOp, n.bPerOp), delta(o.allocsPerOp, n.allocsPerOp))
		}
		p99Col := "-"
		if o.hasP99() && n.hasP99() {
			p99Col = delta(o.p99Ns, n.p99Ns)
		}
		rateCol := "-"
		if o.hasRate() && n.hasRate() {
			rateCol = fmt.Sprintf("%.3f->%.3f", o.hitRate, n.hitRate)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\t%s\t%s%s\n",
			name, o.nsPerOp, n.nsPerOp, delta(o.nsPerOp, n.nsPerOp), memCols, p99Col, rateCol, mark)
	}
	tw.Flush()

	// One-sided benchmarks are informational, never fatal: report them
	// sorted as removed (old only) / added (new only) and continue.
	var removed, added []string
	for name := range oldBase {
		if _, ok := newBase[name]; !ok {
			removed = append(removed, name)
		}
	}
	for name := range newBase {
		if _, ok := oldBase[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	for _, name := range removed {
		fmt.Fprintf(w, "removed (only in %s): %s\n", oldPath, name)
	}
	for _, name := range added {
		fmt.Fprintf(w, "added (only in %s): %s\n", newPath, name)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond %.0f%% (ns/op, p99_ns, or hit_rate)\n", regressions, 100**threshold)
	}
	return regressions, nil
}

func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// jsonDelta is one NDJSON line of the -json report. Pointer fields are
// omitted when the metric is absent on that side (added/removed benchmarks,
// baselines without -benchmem rows).
type jsonDelta struct {
	Name       string   `json:"name"`
	Status     string   `json:"status"` // "common" | "added" | "removed"
	NsPerOpOld *float64 `json:"ns_per_op_old,omitempty"`
	NsPerOpNew *float64 `json:"ns_per_op_new,omitempty"`
	Delta      *float64 `json:"delta,omitempty"` // fractional ns/op change
	Regression bool     `json:"regression"`
	Reasons    []string `json:"regression_reasons,omitempty"`
	BPerOpOld  *float64 `json:"b_per_op_old,omitempty"`
	BPerOpNew  *float64 `json:"b_per_op_new,omitempty"`
	AllocsOld  *float64 `json:"allocs_per_op_old,omitempty"`
	AllocsNew  *float64 `json:"allocs_per_op_new,omitempty"`
	HitRateOld *float64 `json:"hit_rate_old,omitempty"`
	HitRateNew *float64 `json:"hit_rate_new,omitempty"`
	P99NsOld   *float64 `json:"p99_ns_old,omitempty"`
	P99NsNew   *float64 `json:"p99_ns_new,omitempty"`
}

// runJSON emits the diff as NDJSON: common benchmarks first (sorted), then
// removed and added ones. Regression accounting matches the table mode.
func runJSON(w io.Writer, names []string, oldBase, newBase map[string]*record, threshold float64) (regressions int, err error) {
	enc := json.NewEncoder(w)
	f := func(v float64) *float64 { return &v }
	for _, name := range names {
		o, n := oldBase[name], newBase[name]
		d := jsonDelta{
			Name: name, Status: "common",
			NsPerOpOld: f(o.nsPerOp), NsPerOpNew: f(n.nsPerOp),
		}
		if o.nsPerOp > 0 {
			d.Delta = f((n.nsPerOp - o.nsPerOp) / o.nsPerOp)
		}
		if reasons := regressReasons(o, n, threshold); len(reasons) > 0 {
			regressions++
			d.Regression = true
			d.Reasons = reasons
		}
		if o.hasMem() && n.hasMem() {
			d.BPerOpOld, d.BPerOpNew = f(o.bPerOp), f(n.bPerOp)
			d.AllocsOld, d.AllocsNew = f(o.allocsPerOp), f(n.allocsPerOp)
		}
		if o.hasRate() && n.hasRate() {
			d.HitRateOld, d.HitRateNew = f(o.hitRate), f(n.hitRate)
		}
		if o.hasP99() && n.hasP99() {
			d.P99NsOld, d.P99NsNew = f(o.p99Ns), f(n.p99Ns)
		}
		if err := enc.Encode(d); err != nil {
			return regressions, err
		}
	}
	oneSided := func(base map[string]*record, other map[string]*record) []string {
		var out []string
		for name := range base {
			if _, ok := other[name]; !ok {
				out = append(out, name)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, name := range oneSided(oldBase, newBase) {
		o := oldBase[name]
		if err := enc.Encode(jsonDelta{Name: name, Status: "removed", NsPerOpOld: f(o.nsPerOp)}); err != nil {
			return regressions, err
		}
	}
	for _, name := range oneSided(newBase, oldBase) {
		n := newBase[name]
		if err := enc.Encode(jsonDelta{Name: name, Status: "added", NsPerOpNew: f(n.nsPerOp)}); err != nil {
			return regressions, err
		}
	}
	return regressions, nil
}
