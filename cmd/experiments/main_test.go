package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "E12", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== E12") {
		t.Fatal("table not rendered")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "E3,E9", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "E99"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRegistrySweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "E14", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== E14") {
		t.Fatal("E14 table not rendered")
	}
	for _, name := range []string{"changli", "weighted", "sparsecover", "netdecomp", "gkm", "covering", "packing", "solve"} {
		if !strings.Contains(out, name) {
			t.Fatalf("registry sweep missing family %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "SHAPE VIOLATION") {
		t.Fatalf("registry sweep reported failures:\n%s", out)
	}
}

func TestRunTimeoutBoundsRegistrySweep(t *testing.T) {
	// With an already-expired deadline the sweep rows error out but the
	// command itself still renders the table.
	var buf bytes.Buffer
	if err := run([]string{"-id", "E14", "-quick", "-timeout", "1ns"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SHAPE VIOLATION") {
		t.Fatalf("expired deadline did not surface in the table:\n%s", buf.String())
	}
}
