package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "E12", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== E12") {
		t.Fatal("table not rendered")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "E3,E9", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "E99"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
