// Command experiments regenerates the reproduction's experiment tables
// (E1–E14 in DESIGN.md / EXPERIMENTS.md). E14 sweeps the unified algorithm
// registry (internal/algo), invoking every family by name.
//
// Usage:
//
//	experiments [-id E4] [-seed 1] [-quick] [-timeout 2m]
//
// Without -id, every experiment runs in order. -quick shrinks the sweeps to
// the sizes used by the benchmark targets; -timeout bounds the whole run
// (registry-driven experiments stop at the deadline).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("id", "", "experiment id (E1..E14); empty runs all")
	seed := fs.Uint64("seed", 1, "root random seed")
	quick := fs.Bool("quick", false, "shrink sweeps (benchmark-sized)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole run (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := expt.Config{Seed: *seed, Quick: *quick, Ctx: ctx}
	var selected []expt.Experiment
	if *id == "" {
		selected = expt.All()
	} else {
		for _, one := range strings.Split(*id, ",") {
			e, ok := expt.Lookup(strings.TrimSpace(one))
			if !ok {
				return fmt.Errorf("unknown experiment %q (valid: E1..E14)", one)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(cfg)
		tbl.Note("elapsed: %v", time.Since(start).Round(time.Millisecond))
		tbl.Render(w)
	}
	return nil
}
