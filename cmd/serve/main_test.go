package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/server"
)

func TestSyntheticWorkload(t *testing.T) {
	var out strings.Builder
	args := []string{"-gen", "gnp", "-n", "300", "-requests", "400",
		"-concurrency", "4", "-seedspace", "2", "-seed", "7"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"fingerprint:", "req/s", "hit rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGraphFamilies(t *testing.T) {
	for _, kind := range []string{"cycle", "path", "grid", "torus", "gnp", "regular"} {
		if _, err := buildGraph(kind, 64, 1); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildGraph("nope", 64, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := buildGraph("cycle", 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestLoadedGraphWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el.gz")
	if err := graphio.Save(path, gen.Grid(12, 12)); err != nil {
		t.Fatal(err)
	}
	args := []string{"-load", path, "-requests", "100", "-concurrency", "2", "-seedspace", "2"}
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTraceReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	content := `# warm one decomposition, then query it
changli eps=0.3 seed=1 scale=0.05
changli eps=0.3 seed=1 scale=0.05
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
cover lambda=0.5 seed=2
net lambda=0.5 seed=3
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "200", "-trace", trace, "-concurrency", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace: 6 requests") {
		t.Fatalf("trace count missing:\n%s", out.String())
	}
}

func TestTraceErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"unknown-op":   "frobnicate x=1\n",
		"bad-token":    "changli eps\n",
		"bad-number":   "changli eps=abc\n",
		"out-of-range": "ball v=100000 k=1\n",
		"empty":        "# nothing\n",
	} {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		args := []string{"-gen", "cycle", "-n", "100", "-trace", path}
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	args := []string{"-gen", "cycle", "-n", "100", "-trace", filepath.Join(dir, "missing.txt")}
	if err := run(args, io.Discard); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-concurrency", "0"},
		{"-seedspace", "0"},
		{"-load", "nope.unknownext"},
		{"-gen", "bogus"},
	} {
		if err := run(append(args, "-n", "64"), io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestMixedAlgorithmTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "mixed.txt")
	content := `# one request per registered family, plus point queries
changli eps=0.3 seed=1 scale=0.05
weighted eps=0.3 seed=1 scale=0.05
en lambda=0.4 seed=1
mpx lambda=0.4 seed=1
blackbox eps=0.3 seed=1 scale=0.05
sparsecover lambda=0.5 seed=2
netdecomp lambda=0.5 seed=3
packing problem=mis prep=2 seed=1
covering problem=vc prep=2 seed=1
gkm problem=mis scale=0.4 seed=1
solve problem=mis
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "150", "-trace", trace, "-concurrency", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace: 13 requests") {
		t.Fatalf("trace count missing:\n%s", out.String())
	}
}

func TestSyntheticWorkloadWithAlgoAndTimeout(t *testing.T) {
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "200", "-requests", "200",
		"-concurrency", "2", "-seedspace", "2", "-algo", "netdecomp",
		"-timeout", "30s"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"req/s", "evictions", "dedup joins", "deadlines:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTinyTimeoutCountsNotFails(t *testing.T) {
	// A 1ns deadline expires before any request completes; the run must
	// still succeed and report the deadline count.
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "300", "-requests", "50",
		"-concurrency", "2", "-seedspace", "2", "-timeout", "1ns", "-warm=false"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "deadlines: 50 of 50") {
		t.Fatalf("expected all requests to exceed the deadline:\n%s", out.String())
	}
}

func TestUnknownAlgoFlagRejected(t *testing.T) {
	if err := run([]string{"-gen", "cycle", "-n", "100", "-algo", "quantum"}, io.Discard); err == nil {
		t.Fatal("unknown -algo accepted")
	}
}

func TestTraceRejectsEmptyParamValue(t *testing.T) {
	// "eps=" must fail at trace load time, exactly like it would fail in
	// the runner (no silent default substitution in the cache key).
	dir := t.TempDir()
	path := filepath.Join(dir, "empty-value.txt")
	if err := os.WriteFile(path, []byte("changli eps= seed=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard); err == nil {
		t.Fatal("empty param value accepted")
	}
}

func TestMutationTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "mut.txt")
	content := `# decompose, mutate, decompose again (new snapshot), compact, query
changli eps=0.3 seed=1 scale=0.05
addedge 0 50
deledge 1 2
changli eps=0.3 seed=1 scale=0.05
compact
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "100", "-trace", trace, "-concurrency", "1"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"trace: 7 requests", "writes", "store: epoch 2", "1 compactions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// The two identical changli requests straddle mutations, and the
	// cluster query follows a compact: three distinct snapshots, so all
	// three decompositions must have computed (no stale hits).
	if !strings.Contains(out.String(), "3 computations") {
		t.Fatalf("mutation did not change the served snapshot:\n%s", out.String())
	}
}

func TestMutationTraceErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"arity":        "addedge 3\n",
		"range":        "addedge 3 100000\n",
		"self-loop":    "deledge 4 4\n",
		"not-a-number": "deledge a b\n",
		"compact-args": "compact now\n",
	} {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestMixedChurnSmoke is the race-suite smoke: >= 8 concurrent clients
// mixing algorithm requests, point queries, and store mutations with
// periodic compaction, on a seeded workload. Skipped under -short so CI's
// dedicated mixed read/write race step is its only -race execution.
func TestMixedChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy churn smoke; runs in the dedicated race step")
	}
	var out strings.Builder
	args := []string{"-gen", "gnp", "-n", "250", "-requests", "600",
		"-concurrency", "8", "-seedspace", "2", "-seed", "13",
		"-churn", "0.15", "-compactevery", "20", "-capacity", "16"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"reads", "writes", "store: epoch", "hit rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestChurnFlagValidation(t *testing.T) {
	for _, churn := range []string{"-0.1", "1.5"} {
		if err := run([]string{"-gen", "cycle", "-n", "64", "-churn", churn}, io.Discard); err == nil {
			t.Fatalf("churn %s accepted", churn)
		}
	}
}

// syncWriter is a concurrency-safe output sink for tests that read the
// output while run() is still writing (the -http mode test).
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMutationTraceErrorContext pins the fix for positional-op errors: a
// bad mutation line must name the file, the line number, the op, and the
// offending token.
func TestMutationTraceErrorContext(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ctx.txt")
	content := "changli eps=0.3 seed=1\n\ndeledge 4 x\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard)
	if err == nil {
		t.Fatal("bad mutation line accepted")
	}
	for _, want := range []string{"ctx.txt:3:", "deledge", `"x"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Out-of-range endpoints name the op too.
	if err := os.WriteFile(path, []byte("addedge 0 5000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "addedge:") || !strings.Contains(err.Error(), ":1:") {
		t.Fatalf("out-of-range error lacks context: %v", err)
	}
}

func TestHTTPConnectFlagConflict(t *testing.T) {
	err := run([]string{"-gen", "cycle", "-n", "64", "-http", ":0", "-connect", "http://x"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}

// startTestServer exposes a generated graph through the HTTP layer for the
// -connect tests.
func startTestServer(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	srv := server.New(engine.New(engine.Options{}), server.Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestConnectModeSynthetic(t *testing.T) {
	ts, _ := startTestServer(t)
	var out strings.Builder
	args := []string{"-connect", ts.URL, "-gen", "cycle", "-n", "150", "-requests", "120",
		"-concurrency", "4", "-seedspace", "2", "-seed", "5"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"connect:", "graph g1", "over HTTP", "req/s", "store: epoch 0"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestConnectModeChurn(t *testing.T) {
	ts, srv := startTestServer(t)
	var out strings.Builder
	args := []string{"-connect", ts.URL, "-gen", "gnp", "-n", "120", "-requests", "150",
		"-concurrency", "4", "-seedspace", "2", "-seed", "9", "-churn", "0.2", "-compactevery", "10"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"writes", "store: epoch"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	if n := srv.Engine().Stats().InflightTotal(); n != 0 {
		t.Fatalf("%d dangling inflight computations after churn", n)
	}
}

func TestConnectModeTraceAndGraphID(t *testing.T) {
	ts, srv := startTestServer(t)
	// Pre-create a graph server-side and replay a mixed trace against it.
	id, _ := srv.AddGraph(gen.Cycle(120))
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.txt")
	content := "changli eps=0.3 seed=1 scale=0.05\naddedge 0 60\ncluster v=5 eps=0.3 seed=1 scale=0.05\nball v=9 k=2\ncompact\n"
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-connect", ts.URL, "-graphid", id, "-trace", trace, "-concurrency", "1"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"trace: 5 requests", "1 compactions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Unknown graph id fails fast.
	if err := run([]string{"-connect", ts.URL, "-graphid", "g99", "-requests", "10"}, io.Discard); err == nil {
		t.Fatal("unknown -graphid accepted")
	}
}

func TestConnectModeUpload(t *testing.T) {
	ts, _ := startTestServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el.gz")
	if err := graphio.Save(path, gen.Grid(10, 10)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-connect", ts.URL, "-load", path, "-requests", "60", "-concurrency", "2", "-seedspace", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "n=100") {
		t.Fatalf("uploaded graph not served:\n%s", out.String())
	}
}

// TestHTTPServeModeDrainsOnSignal drives the -http server mode end to end:
// boot, serve real requests over the socket, SIGINT, graceful drain.
func TestHTTPServeModeDrainsOnSignal(t *testing.T) {
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-gen", "cycle", "-n", "200", "-http", "127.0.0.1:0"}, out)
	}()
	// Wait for the listener line to learn the bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "at http://") {
			line := s[strings.Index(s, "at http://")+len("at "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	c := server.NewClient(base, nil)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res, err := c.Run(ctx, "g1", server.RunRequest{Algo: "changli", Params: map[string]string{"seed": "3"}})
	if err != nil {
		t.Fatalf("run over socket: %v", err)
	}
	if len(res.ClusterOf) != 200 {
		t.Fatalf("bad result over socket: %d assignments", len(res.ClusterOf))
	}
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve mode: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not drain after SIGINT:\n%s", out.String())
	}
	for _, want := range []string{"signal received, draining", "drained; cache:", "1 misses"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLatencySummaryAndSlowlog(t *testing.T) {
	dir := t.TempDir()
	slog := filepath.Join(dir, "slow.ndjson")
	var out strings.Builder
	args := []string{"-gen", "grid", "-n", "400", "-requests", "200",
		"-concurrency", "2", "-seedspace", "2", "-slowlog", slog, "-slowms", "0"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"latency: p50", "p99.9", "slowlog:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(slog)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("slow log is empty at threshold 0")
	}
	sawAlgo := false
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("slow-log line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		for _, key := range []string{"ts", "trace", "name", "total_ns", "phases"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("slow-log line %d missing %q: %s", i+1, key, line)
			}
		}
		if ev["algo"] == "changli" {
			sawAlgo = true
		}
	}
	if !sawAlgo {
		t.Fatalf("no changli event in %d slow-log lines", len(lines))
	}
}

func TestSlowlogThresholdFiltersFastRequests(t *testing.T) {
	// At an hour-scale threshold nothing on a toy graph qualifies: the log
	// stays empty but the latency summary still prints.
	dir := t.TempDir()
	slog := filepath.Join(dir, "slow.ndjson")
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "200", "-requests", "100",
		"-concurrency", "2", "-seedspace", "2", "-slowlog", slog, "-slowms", "3600000"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	data, err := os.ReadFile(slog)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("expected empty slow log, got %d bytes:\n%s", len(data), data)
	}
	if !strings.Contains(out.String(), "latency: p50") {
		t.Fatalf("latency summary missing:\n%s", out.String())
	}
}
