package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/graphio"
)

func TestSyntheticWorkload(t *testing.T) {
	var out strings.Builder
	args := []string{"-gen", "gnp", "-n", "300", "-requests", "400",
		"-concurrency", "4", "-seedspace", "2", "-seed", "7"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"fingerprint:", "req/s", "hit rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGraphFamilies(t *testing.T) {
	for _, kind := range []string{"cycle", "path", "grid", "torus", "gnp", "regular"} {
		if _, err := buildGraph(kind, 64, 1); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildGraph("nope", 64, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := buildGraph("cycle", 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestLoadedGraphWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el.gz")
	if err := graphio.Save(path, gen.Grid(12, 12)); err != nil {
		t.Fatal(err)
	}
	args := []string{"-load", path, "-requests", "100", "-concurrency", "2", "-seedspace", "2"}
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTraceReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	content := `# warm one decomposition, then query it
changli eps=0.3 seed=1 scale=0.05
changli eps=0.3 seed=1 scale=0.05
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
cover lambda=0.5 seed=2
net lambda=0.5 seed=3
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "200", "-trace", trace, "-concurrency", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace: 6 requests") {
		t.Fatalf("trace count missing:\n%s", out.String())
	}
}

func TestTraceErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"unknown-op":   "frobnicate x=1\n",
		"bad-token":    "changli eps\n",
		"bad-number":   "changli eps=abc\n",
		"out-of-range": "ball v=100000 k=1\n",
		"empty":        "# nothing\n",
	} {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		args := []string{"-gen", "cycle", "-n", "100", "-trace", path}
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	args := []string{"-gen", "cycle", "-n", "100", "-trace", filepath.Join(dir, "missing.txt")}
	if err := run(args, io.Discard); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-concurrency", "0"},
		{"-seedspace", "0"},
		{"-load", "nope.unknownext"},
		{"-gen", "bogus"},
	} {
		if err := run(append(args, "-n", "64"), io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestMixedAlgorithmTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "mixed.txt")
	content := `# one request per registered family, plus point queries
changli eps=0.3 seed=1 scale=0.05
weighted eps=0.3 seed=1 scale=0.05
en lambda=0.4 seed=1
mpx lambda=0.4 seed=1
blackbox eps=0.3 seed=1 scale=0.05
sparsecover lambda=0.5 seed=2
netdecomp lambda=0.5 seed=3
packing problem=mis prep=2 seed=1
covering problem=vc prep=2 seed=1
gkm problem=mis scale=0.4 seed=1
solve problem=mis
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "150", "-trace", trace, "-concurrency", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace: 13 requests") {
		t.Fatalf("trace count missing:\n%s", out.String())
	}
}

func TestSyntheticWorkloadWithAlgoAndTimeout(t *testing.T) {
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "200", "-requests", "200",
		"-concurrency", "2", "-seedspace", "2", "-algo", "netdecomp",
		"-timeout", "30s"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"req/s", "evictions", "dedup joins", "deadlines:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTinyTimeoutCountsNotFails(t *testing.T) {
	// A 1ns deadline expires before any request completes; the run must
	// still succeed and report the deadline count.
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "300", "-requests", "50",
		"-concurrency", "2", "-seedspace", "2", "-timeout", "1ns", "-warm=false"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "deadlines: 50 of 50") {
		t.Fatalf("expected all requests to exceed the deadline:\n%s", out.String())
	}
}

func TestUnknownAlgoFlagRejected(t *testing.T) {
	if err := run([]string{"-gen", "cycle", "-n", "100", "-algo", "quantum"}, io.Discard); err == nil {
		t.Fatal("unknown -algo accepted")
	}
}

func TestTraceRejectsEmptyParamValue(t *testing.T) {
	// "eps=" must fail at trace load time, exactly like it would fail in
	// the runner (no silent default substitution in the cache key).
	dir := t.TempDir()
	path := filepath.Join(dir, "empty-value.txt")
	if err := os.WriteFile(path, []byte("changli eps= seed=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard); err == nil {
		t.Fatal("empty param value accepted")
	}
}

func TestMutationTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "mut.txt")
	content := `# decompose, mutate, decompose again (new snapshot), compact, query
changli eps=0.3 seed=1 scale=0.05
addedge 0 50
deledge 1 2
changli eps=0.3 seed=1 scale=0.05
compact
cluster v=5 eps=0.3 seed=1 scale=0.05
ball v=9 k=2
`
	if err := os.WriteFile(trace, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-gen", "cycle", "-n", "100", "-trace", trace, "-concurrency", "1"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"trace: 7 requests", "writes", "store: epoch 2", "1 compactions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// The two identical changli requests straddle mutations, and the
	// cluster query follows a compact: three distinct snapshots, so all
	// three decompositions must have computed (no stale hits).
	if !strings.Contains(out.String(), "3 computations") {
		t.Fatalf("mutation did not change the served snapshot:\n%s", out.String())
	}
}

func TestMutationTraceErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"arity":        "addedge 3\n",
		"range":        "addedge 3 100000\n",
		"self-loop":    "deledge 4 4\n",
		"not-a-number": "deledge a b\n",
		"compact-args": "compact now\n",
	} {
		path := filepath.Join(dir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-gen", "cycle", "-n", "100", "-trace", path}, io.Discard); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestMixedChurnSmoke is the race-suite smoke: >= 8 concurrent clients
// mixing algorithm requests, point queries, and store mutations with
// periodic compaction, on a seeded workload. Skipped under -short so CI's
// dedicated mixed read/write race step is its only -race execution.
func TestMixedChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy churn smoke; runs in the dedicated race step")
	}
	var out strings.Builder
	args := []string{"-gen", "gnp", "-n", "250", "-requests", "600",
		"-concurrency", "8", "-seedspace", "2", "-seed", "13",
		"-churn", "0.15", "-compactevery", "20", "-capacity", "16"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"reads", "writes", "store: epoch", "hit rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestChurnFlagValidation(t *testing.T) {
	for _, churn := range []string{"-0.1", "1.5"} {
		if err := run([]string{"-gen", "cycle", "-n", "64", "-churn", churn}, io.Discard); err == nil {
			t.Fatalf("churn %s accepted", churn)
		}
	}
}
