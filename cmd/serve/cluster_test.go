package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/server"
	"repro/internal/store"
)

// startProcess launches this test binary as a real serve process (via the
// TestServeCrashHelper re-exec hook) with the given CLI args, and waits
// for it to announce its listen address ("at http://...").
func startProcess(t *testing.T, args string) (*exec.Cmd, string, *syncWriter) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestServeCrashHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", "SERVE_CRASH_ARGS="+args)
	out := &syncWriter{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "at http://") {
			line := s[strings.Index(s, "at http://")+len("at "):]
			return cmd, strings.TrimSpace(strings.SplitN(line, "\n", 2)[0]), out
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("process never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterSmoke is the end-to-end cluster exercise: a router and three
// backend nodes as real subprocesses, a churn workload driven through the
// router, one backend SIGKILLed mid-run. The run must complete, the
// router must record the failovers/fallbacks it absorbed, and the cluster
// must stay in lockstep with a reference store replaying the same op
// stream — fingerprints, epochs, and changli results bit-identical.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kill -9s real server processes")
	}
	backends := make([]*exec.Cmd, 3)
	urls := make([]string, 3)
	for i := range backends {
		cmd, base, _ := startProcess(t, "-gen cycle -n 32 -http 127.0.0.1:0")
		backends[i] = cmd
		urls[i] = base
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	router, routerBase, _ := startProcess(t,
		"-cluster -nodes "+strings.Join(urls, ",")+" -replicas 3 -hedge-after 200us -http 127.0.0.1:0")
	t.Cleanup(func() { router.Process.Kill(); router.Wait() })

	ctx := context.Background()
	cl := server.NewClient(routerBase, nil).WithRetry(server.RetryPolicy{MaxAttempts: 3})
	waitHealthy(t, cl)

	const (
		family = "gnp"
		n      = 96
		seed   = 5
	)
	info, err := cl.Generate(ctx, family, n, seed)
	if err != nil {
		t.Fatalf("generate through router: %v", err)
	}
	g, err := gen.Family(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	ref := store.New(g)
	refEngine := engine.New(engine.Options{})
	refHandle := refEngine.RegisterStore(ref)
	if fp := ref.Fingerprint().String(); fp != info.Fingerprint {
		t.Fatalf("fingerprints diverge at creation: %s vs %s", fp, info.Fingerprint)
	}

	checkRun := func(t *testing.T) {
		t.Helper()
		got, err := cl.Run(ctx, info.ID, server.RunRequest{Algo: "changli", Q: "eps=0.3 seed=2"})
		if err != nil {
			t.Fatalf("run through router: %v", err)
		}
		want, err := refEngine.Run(ctx, refHandle, "changli", algo.Params{"eps": "0.3", "seed": "2"})
		if err != nil {
			t.Fatal(err)
		}
		if got.Snapshot != want.Snapshot || got.NumClusters != want.NumClusters ||
			!slices.Equal(got.ClusterOf, want.ClusterOf) {
			t.Fatalf("cluster and reference diverged: %d clusters on %s, want %d on %s",
				got.NumClusters, got.Snapshot, want.NumClusters, want.Snapshot)
		}
	}

	// Serial churn through the router, mirrored onto the reference store.
	// Backend 1 is SIGKILLed a third of the way in; every op afterwards
	// must still be acknowledged (the router fails over internally) and
	// must still match the reference exactly.
	const ops = 150
	for i := range ops {
		u := (i * 13) % n
		v := (u + 1 + i%7) % n
		if u == v {
			v = (v + 1) % n
		}
		if i == 60 {
			backends[1].Process.Kill()
			backends[1].Wait()
		}
		var resp *server.MutateResponse
		var applied bool
		if i%3 == 0 {
			resp, err = cl.DeleteEdge(ctx, info.ID, u, v)
			applied = ref.DeleteEdge(u, v)
		} else {
			resp, err = cl.AddEdge(ctx, info.ID, u, v)
			applied = ref.AddEdge(u, v)
		}
		if err != nil {
			var diag string
			if mresp, merr := http.Get(routerBase + "/metrics"); merr == nil {
				b, _ := io.ReadAll(mresp.Body)
				mresp.Body.Close()
				diag = string(b)
			}
			t.Fatalf("op %d: %v\nrouter metrics:\n%s", i, err, diag)
		}
		if resp.Applied != applied || resp.Epoch != ref.Epoch() || resp.Fingerprint != ref.Fingerprint().String() {
			t.Fatalf("op %d diverged from reference: got applied=%v epoch=%d fp=%s, want applied=%v epoch=%d fp=%s",
				i, resp.Applied, resp.Epoch, resp.Fingerprint, applied, ref.Epoch(), ref.Fingerprint().String())
		}
		if i%25 == 24 {
			checkRun(t)
		}
	}

	// Reads keep rotating over the survivors; all must agree with the
	// reference after the dust settles.
	for range 3 {
		checkRun(t)
	}
	final, err := cl.GraphInfo(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Fingerprint != ref.Fingerprint().String() || final.Epoch != ref.Epoch() {
		t.Fatalf("final state diverged: %s@%d vs reference %s@%d",
			final.Fingerprint, final.Epoch, ref.Fingerprint().String(), ref.Epoch())
	}

	// The router's own metrics must show what happened: the killed node
	// down, and the kill absorbed as read fallbacks and/or mutation
	// failovers rather than client-visible errors.
	resp, err := http.Get(routerBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	if !strings.Contains(metrics, `repro_cluster_node_up{node="1"} 0`) {
		t.Fatalf("metrics do not show node 1 down:\n%s", metrics)
	}
	for _, family := range []string{
		"repro_cluster_reads_total", "repro_cluster_mutations_total",
		"repro_cluster_hedged_requests_total", "repro_cluster_hedge_wins_total",
		"repro_cluster_read_fallbacks_total", "repro_cluster_mutation_failovers_total",
		"repro_cluster_resyncs_total", "repro_cluster_replication_push_seconds",
		"repro_cluster_replica_behind_deltas",
	} {
		if !strings.Contains(metrics, family) {
			t.Fatalf("metrics missing family %s:\n%s", family, metrics)
		}
	}
	absorbed := false
	for _, line := range strings.Split(metrics, "\n") {
		if (strings.HasPrefix(line, "repro_cluster_read_fallbacks_total ") ||
			strings.HasPrefix(line, "repro_cluster_mutation_failovers_total ")) &&
			!strings.HasSuffix(line, " 0") {
			absorbed = true
		}
	}
	if !absorbed {
		t.Fatalf("router absorbed no fallbacks/failovers despite the kill:\n%s", metrics)
	}
}
