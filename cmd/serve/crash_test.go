package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/server"
	"repro/internal/store"
)

// TestDatadirSmoke runs the in-process workload twice over one durability
// directory and checks the second life recovers the first one's state.
func TestDatadirSmoke(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-gen", "cycle", "-n", "64", "-requests", "300", "-churn", "0.3",
		"-concurrency", "2", "-seedspace", "2", "-compactevery", "16", "-datadir", dir}
	out := &syncWriter{}
	if err := run(args, out); err != nil {
		t.Fatalf("first life: %v\n%s", err, out.String())
	}
	for _, want := range []string{"datadir: created", "durable: dir " + dir} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("first life output missing %q:\n%s", want, out.String())
		}
	}

	out2 := &syncWriter{}
	if err := run(args, out2); err != nil {
		t.Fatalf("second life: %v\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "datadir: recovered "+dir) {
		t.Fatalf("second life did not recover the store:\n%s", out2.String())
	}
}

const crashHelperEnv = "SERVE_CRASH_HELPER"

// TestServeCrashHelper is not a test: it is the subprocess body for
// TestCrashRecovery, re-executing this test binary as a real serve process
// that can be SIGKILLed without taking the test run down with it.
func TestServeCrashHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("subprocess body for TestCrashRecovery")
	}
	if err := run(strings.Fields(os.Getenv("SERVE_CRASH_ARGS")), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startServeProcess launches the helper subprocess serving a durable cycle
// graph over HTTP and returns once the bound address is known.
func startServeProcess(t *testing.T, dir string) (*exec.Cmd, string, *syncWriter) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestServeCrashHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1",
		"SERVE_CRASH_ARGS=-gen cycle -n 128 -genseed 1 -http 127.0.0.1:0 -datadir "+dir)
	out := &syncWriter{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "at http://") {
			line := s[strings.Index(s, "at http://")+len("at "):]
			return cmd, strings.TrimSpace(strings.SplitN(line, "\n", 2)[0]), out
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitHealthy(t *testing.T, c *server.Client) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for c.Healthz(ctx) != nil {
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecovery kill -9s a real serve process mid-churn and checks the
// restarted process recovers exactly the durable state: every acknowledged
// mutation survives, the recovered epoch and fingerprint match a reference
// store that replays the same operation stream, and query results over the
// recovered graph are identical to an uninterrupted run.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kill -9s real server processes")
	}
	dir := t.TempDir()
	cmd, base, _ := startServeProcess(t, dir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	ctx := context.Background()
	c := server.NewClient(base, nil)
	waitHealthy(t, c)

	// Serial churn from one goroutine: the WAL order is then exactly the
	// attempt order, so a reference store can replay it. Each op is
	// recorded before it is issued — the op in flight when the kill lands
	// may or may not have reached the WAL, and only the epoch count on the
	// recovered store can tell.
	type op struct {
		del  bool
		u, v int
	}
	var (
		mu        sync.Mutex
		attempted []op
		acked     int
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			u := (i * 17) % 128
			o := op{del: i%3 == 0, u: u, v: (u + 1 + i%5) % 128}
			mu.Lock()
			attempted = append(attempted, o)
			mu.Unlock()
			var err error
			if o.del {
				_, err = c.DeleteEdge(ctx, "g1", o.u, o.v)
			} else {
				_, err = c.AddEdge(ctx, "g1", o.u, o.v)
			}
			if err != nil {
				return // connection died with the process: stop churning
			}
			mu.Lock()
			acked++
			mu.Unlock()
		}
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := acked
		mu.Unlock()
		if n >= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("churn never reached 40 acknowledged mutations")
		}
		time.Sleep(time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no drain, no WAL rotation, no hot-key dump
	cmd.Wait()
	<-done
	mu.Lock()
	ops, ackedOps := attempted, acked
	mu.Unlock()

	// Second life over the same directory.
	cmd2, base2, out2 := startServeProcess(t, dir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c2 := server.NewClient(base2, nil)
	waitHealthy(t, c2)
	if !strings.Contains(out2.String(), "datadir: recovered "+dir) {
		t.Fatalf("restart did not recover the store:\n%s", out2.String())
	}
	info, err := c2.GraphInfo(ctx, "g1")
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted store replaying the same stream. All
	// acknowledged ops must be durable; past them, apply the unacked tail
	// only as far as the recovered epoch says the WAL got.
	g, err := gen.Family("cycle", 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := store.New(g)
	for i, o := range ops {
		if i >= ackedOps && ref.Epoch() >= info.Epoch {
			break
		}
		if o.del {
			ref.DeleteEdge(o.u, o.v)
		} else {
			ref.AddEdge(o.u, o.v)
		}
	}
	if ref.Epoch() != info.Epoch {
		t.Fatalf("recovered epoch %d does not match any prefix of the %d attempted ops (%d acked, reference reached %d)",
			info.Epoch, len(ops), ackedOps, ref.Epoch())
	}
	if got, want := info.Fingerprint, ref.Fingerprint().String(); got != want {
		t.Fatalf("recovered fingerprint %s, reference %s at epoch %d", got, want, info.Epoch)
	}

	// Query equivalence against the uninterrupted run.
	e := engine.New(engine.Options{})
	h := e.RegisterStore(ref)
	want, err := e.Run(ctx, h, "changli", algo.Params{"eps": "0.3", "scale": "0.05"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Run(ctx, "g1", server.RunRequest{Algo: "changli", Q: "eps=0.3 scale=0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot != want.Snapshot || got.NumClusters != want.NumClusters ||
		!slices.Equal(got.ClusterOf, want.ClusterOf) {
		t.Fatalf("post-recovery query diverged: %d clusters on %s, want %d on %s",
			got.NumClusters, got.Snapshot, want.NumClusters, want.Snapshot)
	}
}
