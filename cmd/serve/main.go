// Command serve loads a graph into a versioned mutable store, warms the
// sharded decomposition engine, and drives it with a mixed read/write
// workload, reporting read and write throughput and cache effectiveness
// under churn. The workload is either a request trace replayed from a file
// (-trace) or a synthetic closed-loop load generated from a seeded RNG, so
// runs are reproducible.
//
// Every algorithm in the registry (internal/algo) is servable: a trace line
// is "algo key=value ..." for any registered name, and -algo selects the
// decomposition family of the synthetic workload. The graph is mutable
// while being served: mutation ops rewrite the store, giving the graph a
// new snapshot identity, and subsequent algorithm requests recompute
// against the new version while results for superseded snapshots age out
// of the engine's LRU. -churn makes the synthetic workload mutate, and
// -compactevery folds the delta overlay back into a fresh CSR every N
// writes. -timeout puts a deadline on every request; deadline-exceeded
// requests are counted and reported rather than failing the run.
//
// Beyond the in-process replay, two network modes bracket the HTTP serving
// layer (internal/server): -http exposes the loaded graph as a real service
// (SIGINT/SIGTERM drains gracefully — in-flight requests finish, new ones
// get 503), and -connect turns this binary into the load generator for a
// remote server, issuing the same seeded workloads over real sockets and
// reporting read/write throughput, timeouts, and shed requests.
//
// Every closed-loop run reports per-request latency percentiles (p50/p90/
// p99/p99.9) from a lock-cheap histogram. -slowlog writes an NDJSON
// slow-query log ("-" = stderr) for requests slower than -slowms
// milliseconds, each line carrying the algorithm, cache key, snapshot
// fingerprint, and per-phase latency breakdown; in -http mode the server
// additionally exposes /metrics (Prometheus text), /debug/traces, and
// /debug/pprof/*.
//
// Usage:
//
//	serve -gen gnp -n 5000 -requests 20000 -concurrency 8
//	serve -load web.metis.gz -requests 10000 -seedspace 4
//	serve -gen grid -n 10000 -trace trace.txt -concurrency 16 -timeout 50ms
//	serve -gen gnp -n 2000 -requests 20000 -churn 0.05 -compactevery 64
//	serve -gen gnp -n 5000 -http :8080 -shards 16
//	serve -connect http://localhost:8080 -requests 20000 -churn 0.1 -concurrency 8
//
// Trace files contain one request per line ('#' starts a comment):
//
//	changli eps=0.3 seed=4 [scale=0.05] [skip2=true]
//	sparsecover lambda=0.5 seed=2
//	netdecomp lambda=0.5 seed=1
//	gkm problem=mis eps=0.25 seed=3
//	packing problem=mis prep=2 seed=1
//	cluster v=17 eps=0.3 seed=4 [scale=0.05]
//	ball v=17 k=2
//	addedge 17 42
//	deledge 17 18
//	compact
//
// (aliases like cover/net/chang-li work too; see the README table.)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/algo"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/ldd"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// buildGraph constructs the requested generated topology on roughly n
// vertices (gen.Family is the shared vocabulary of the CLIs and the HTTP
// layer's generate endpoint).
func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	return gen.Family(kind, n, seed)
}

// request is one parsed workload operation: a registry algorithm
// invocation by name, a point query (cluster, ball) served from the cached
// ChangLi decomposition, or a store mutation (addedge, deledge, compact).
type request struct {
	op     string // "algo" | "cluster" | "ball" | "addedge" | "deledge" | "compact"
	algo   string // registry name when op == "algo"
	params algo.Params
	cl     ldd.Params // cluster point queries
	vertex int32
	radius int
	u, v   int32 // mutation endpoints
}

// write reports whether the request mutates the store.
func (r request) write() bool {
	return r.op == "addedge" || r.op == "deledge" || r.op == "compact"
}

// name labels the request for traces: the registry name for algorithm runs,
// the op otherwise.
func (r request) name() string {
	if r.op == "algo" {
		return r.algo
	}
	return r.op
}

// issue executes the request against the engine (reads) or the store
// (writes). noop reports a mutation that found nothing to do — the edge
// was already present (addedge) or already gone (deledge, typically lost
// to a concurrent delete of the same sampled edge).
func (r request) issue(ctx context.Context, e *engine.Engine, h engine.StoreHandle) (noop bool, err error) {
	switch r.op {
	case "algo":
		_, err := e.Run(ctx, h, r.algo, r.params)
		return false, err
	case "cluster":
		_, err := e.ClusterOf(ctx, h, r.cl, []int32{r.vertex})
		return false, err
	case "ball":
		_, err := e.Balls(ctx, h, []int32{r.vertex}, r.radius, 1)
		return false, err
	case "addedge":
		return !h.Store().AddEdge(int(r.u), int(r.v)), nil
	case "deledge":
		return !h.Store().DeleteEdge(int(r.u), int(r.v)), nil
	case "compact":
		_, err := h.Store().Compact()
		return false, err
	default:
		return false, fmt.Errorf("unknown op %q", r.op)
	}
}

// issueHTTP executes the request against a remote serving layer through
// the typed client, mirroring issue's op mapping onto the HTTP API.
func (r request) issueHTTP(ctx context.Context, c *server.Client, id string) (noop bool, err error) {
	switch r.op {
	case "algo":
		_, err := c.Run(ctx, id, server.RunRequest{Algo: r.algo, Params: r.params})
		return false, err
	case "cluster":
		_, err := c.Query(ctx, id, server.QueryRequest{
			Op: "cluster", Vertices: []int32{r.vertex},
			Eps: r.cl.Epsilon, Scale: r.cl.Scale, Seed: r.cl.Seed, Skip2: r.cl.SkipPhase2,
		})
		return false, err
	case "ball":
		_, err := c.Query(ctx, id, server.QueryRequest{Op: "ball", Vertices: []int32{r.vertex}, Radius: r.radius})
		return false, err
	case "addedge":
		mr, err := c.AddEdge(ctx, id, int(r.u), int(r.v))
		return err == nil && !mr.Applied, err
	case "deledge":
		mr, err := c.DeleteEdge(ctx, id, int(r.u), int(r.v))
		return err == nil && !mr.Applied, err
	case "compact":
		_, err := c.Compact(ctx, id)
		return false, err
	default:
		return false, fmt.Errorf("unknown op %q", r.op)
	}
}

// parseMutation parses the positional mutation ops of the trace language:
// "addedge u v", "deledge u v", "compact".
func parseMutation(fields []string, n int) (request, error) {
	r := request{op: fields[0]}
	if r.op == "compact" {
		if len(fields) != 1 {
			return r, errors.New("compact takes no arguments")
		}
		return r, nil
	}
	if len(fields) != 3 {
		return r, fmt.Errorf("%s wants two endpoints, got %d fields", r.op, len(fields)-1)
	}
	// Name the op and the offending token: a raw strconv error out of a
	// positional op gave no hint which mutation (or which endpoint) was at
	// fault, even with the file:line prefix the trace reader adds.
	u, err := strconv.Atoi(fields[1])
	if err != nil {
		return r, fmt.Errorf("%s: bad endpoint %q (want a vertex id)", r.op, fields[1])
	}
	v, err := strconv.Atoi(fields[2])
	if err != nil {
		return r, fmt.Errorf("%s: bad endpoint %q (want a vertex id)", r.op, fields[2])
	}
	if u < 0 || u >= n || v < 0 || v >= n {
		return r, fmt.Errorf("%s: endpoint of {%d, %d} out of range [0, %d)", r.op, u, v, n)
	}
	if u == v {
		return r, fmt.Errorf("%s: self-loop {%d, %d} rejected", r.op, u, v)
	}
	r.u, r.v = int32(u), int32(v)
	return r, nil
}

// parseTraceLine parses one "op key=value ..." request line: cluster and
// ball are point queries, addedge/deledge/compact are store mutations, and
// anything else resolves against the registry.
func parseTraceLine(text string, n int) (request, bool, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return request{}, false, nil
	}
	r := request{op: fields[0]}
	switch r.op {
	case "addedge", "deledge", "compact":
		r, err := parseMutation(fields, n)
		return r, err == nil, err
	}
	if r.op != "cluster" && r.op != "ball" {
		spec, ok := algo.Get(r.op)
		if !ok {
			return r, false, fmt.Errorf("unknown op %q (registry has %s)", r.op, strings.Join(algo.Names(), ", "))
		}
		params, err := algo.ParseParams(fields[1:])
		if err != nil {
			return r, false, err
		}
		// CacheKey both validates the keys and parses every value, so a
		// malformed trace fails at load time, not mid-replay.
		if _, err := spec.CacheKey(params); err != nil {
			return r, false, err
		}
		r.op, r.algo, r.params = "algo", spec.Name, params
		return r, true, nil
	}
	kv := make(map[string]string, len(fields)-1)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, false, fmt.Errorf("bad token %q", f)
		}
		kv[k] = v
	}
	getF := func(key string, def float64) (float64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	getI := func(key string, def int) (int, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	var err error
	switch r.op {
	case "cluster":
		if r.cl.Epsilon, err = getF("eps", 0.3); err != nil {
			return r, false, err
		}
		if r.cl.Scale, err = getF("scale", 0.05); err != nil {
			return r, false, err
		}
		var seed int
		if seed, err = getI("seed", 1); err != nil {
			return r, false, err
		}
		r.cl.Seed = uint64(seed)
		r.cl.SkipPhase2 = kv["skip2"] == "true"
	case "ball":
		if r.radius, err = getI("k", 2); err != nil {
			return r, false, err
		}
	}
	var v int
	if v, err = getI("v", 0); err != nil {
		return r, false, err
	}
	if v < 0 || v >= n {
		return r, false, fmt.Errorf("vertex %d out of range [0, %d)", v, n)
	}
	r.vertex = int32(v)
	return r, true, nil
}

// readTrace parses a trace file into a request list.
func readTrace(path string, n int) ([]request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []request
	s := bufio.NewScanner(f)
	line := 0
	for s.Scan() {
		line++
		r, ok, err := parseTraceLine(s.Text(), n)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if ok {
			out = append(out, r)
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// synthSpace is the precomputed parameter space of the synthetic workload:
// one decomposition request per seed for the chosen algorithm, plus the
// cover side-dish and the ChangLi params backing the cluster point queries.
type synthSpace struct {
	decomp []request // one per seed, algorithm = -algo
	cover  []request
	cl     []ldd.Params // cluster query params (changli-backed)
}

func makeSynthSpace(spec *algo.Spec, seedSpace int, eps, scale float64) synthSpace {
	var sp synthSpace
	for s := 0; s < seedSpace; s++ {
		// Forward only the knobs the chosen algorithm declares: -eps maps
		// onto its eps (or lambda) parameter, -scale onto scale. "solve"
		// declares none of these and runs on its defaults.
		p := algo.Params{}
		if spec.Has("seed") {
			p["seed"] = strconv.Itoa(s)
		}
		if spec.Has("eps") {
			p["eps"] = strconv.FormatFloat(eps, 'g', -1, 64)
		} else if spec.Has("lambda") {
			p["lambda"] = strconv.FormatFloat(eps, 'g', -1, 64)
		}
		if spec.Has("scale") {
			p["scale"] = strconv.FormatFloat(scale, 'g', -1, 64)
		}
		if spec.Name == "gkm" {
			// The GKM horizon at paper constants dwarfs laptop graphs; the
			// changli-oriented -scale default would make it worse, so the
			// synthetic workload pins the E6/E7 experiment scale.
			p["scale"] = "0.4"
		}
		sp.decomp = append(sp.decomp, request{op: "algo", algo: spec.Name, params: p})
		sp.cover = append(sp.cover, request{op: "algo", algo: "sparsecover",
			params: algo.Params{"lambda": "0.5", "seed": strconv.Itoa(s)}})
		sp.cl = append(sp.cl, ldd.Params{Epsilon: eps, Scale: scale, Seed: uint64(s)})
	}
	return sp
}

// synthesize generates a reproducible closed-loop workload: each worker
// draws its own request stream from xrand.Stream(seed, worker, ·), mixing
// decomposition requests over a small parameter space (so the cache can
// pay off) with cluster and ball point queries and — with probability
// churn — store mutations. Inserts draw random endpoint pairs (an
// already-present edge is a no-op); deletes sample an incident edge of a
// random vertex through the neighbors func — the live snapshot in-process,
// a radius-1 ball query over the wire in -connect mode — so deletions
// actually land on sparse graphs (a concurrent delete of the same edge is
// a no-op).
func synthesize(rng *xrand.RNG, n int, sp synthSpace, churn float64, neighbors func(u int) []int32) request {
	if churn > 0 && rng.Float64() < churn {
		if rng.Intn(2) == 0 {
			for try := 0; try < 8; try++ {
				u := rng.Intn(n)
				if nb := neighbors(u); len(nb) > 0 {
					return request{op: "deledge", u: int32(u), v: nb[rng.Intn(len(nb))]}
				}
			}
			// Degenerate near-edgeless graph: fall through to an insert.
		}
		return request{op: "addedge", u: int32(rng.Intn(n)), v: int32(rng.Intn(n))}
	}
	s := rng.Intn(len(sp.decomp))
	switch roll := rng.Intn(10); {
	case roll < 4:
		return sp.decomp[s]
	case roll < 7:
		return request{op: "cluster", cl: sp.cl[s], vertex: int32(rng.Intn(n))}
	case roll < 9:
		return request{op: "ball", vertex: int32(rng.Intn(n)), radius: 1 + rng.Intn(3)}
	default:
		return sp.cover[s]
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(w)
	load := fs.String("load", "", "graph file to load (format by extension; see internal/graphio)")
	genKind := fs.String("gen", "gnp", "generated family when -load is empty: cycle|path|grid|torus|gnp|regular")
	n := fs.Int("n", 2000, "approximate vertex count for -gen")
	genSeed := fs.Uint64("genseed", 1, "generator seed")
	algoName := fs.String("algo", "changli", "synthetic workload decomposition algorithm (any registry name)")
	eps := fs.Float64("eps", 0.3, "epsilon for synthetic decomposition requests")
	scale := fs.Float64("scale", 0.05, "radius scale for synthetic decomposition requests")
	requests := fs.Int("requests", 10000, "synthetic request count (ignored with -trace)")
	concurrency := fs.Int("concurrency", par.Workers(0), "closed-loop client goroutines")
	seedSpace := fs.Int("seedspace", 4, "distinct decomposition seeds in the synthetic workload")
	capacity := fs.Int("capacity", 0, "engine cache capacity (0 = default)")
	shards := fs.Int("shards", 0, "engine shard count (0 = default; rounded to a power of two)")
	repairK := fs.Int("repairk", 16, "delta-repair ancestry window: a cache miss repairs a cached result up to this many mutations old instead of recomputing (0 = always recompute)")
	workers := fs.Int("workers", 0, "per-query worker bound for parallel BFS inside algorithm runs (0 = GOMAXPROCS); results are bit-identical at any setting")
	seed := fs.Uint64("seed", 1, "workload seed")
	trace := fs.String("trace", "", "replay this request trace instead of synthesizing")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = none); expired requests are counted, not fatal")
	warm := fs.Bool("warm", true, "precompute the synthetic seed space before timing")
	churn := fs.Float64("churn", 0, "fraction of synthetic requests that mutate the graph (0 = read-only)")
	compactEvery := fs.Int("compactevery", 0, "fold the delta overlay into a fresh CSR every N writes (0 = never)")
	httpAddr := fs.String("http", "", "serve the graph over HTTP at this address (e.g. :8080) instead of replaying a workload; SIGINT/SIGTERM drains gracefully")
	clusterMode := fs.Bool("cluster", false, "router mode: consistent-hash graphs across -nodes backends and serve the /v1 surface at -http (delta-log replication, hedged reads)")
	nodes := fs.String("nodes", "", "with -cluster: comma-separated backend base URLs (e.g. http://127.0.0.1:9001,http://127.0.0.1:9002)")
	replicas := fs.Int("replicas", 0, "with -cluster: members per graph, owner included (0 = min(2, nodes))")
	hedgeAfter := fs.Duration("hedge-after", 0, "with -cluster: launch a hedged read on the next replica after this long (0 = 2ms default, negative disables)")
	connect := fs.String("connect", "", "drive a remote serving layer at this base URL (e.g. http://host:8080) instead of the in-process engine")
	graphID := fs.String("graphid", "", "with -connect: drive this existing server-side graph instead of uploading/generating one")
	maxInflight := fs.Int("maxinflight", 0, "with -http: admission gate size; excess requests shed with 503 (0 = default)")
	drainTimeout := fs.Duration("draintimeout", 30*time.Second, "with -http: how long shutdown waits for in-flight requests")
	datadir := fs.String("datadir", "", "durability directory: mutations are WAL-logged and survive restarts; an existing store there is recovered and -load/-gen are ignored (empty = memory-only)")
	walFlush := fs.Duration("walflush", 0, "WAL group-commit fsync interval (0 = default 2ms; negative = fsync every append)")
	slowlogPath := fs.String("slowlog", "", "write an NDJSON slow-query log to this file (\"-\" = stderr); enables per-request tracing")
	slowMS := fs.Int("slowms", 0, "with -slowlog: only log requests slower than this many milliseconds (0 = log every traced request)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *concurrency <= 0 || *seedSpace <= 0 {
		return errors.New("requests, concurrency, and seedspace must be positive")
	}
	if *churn < 0 || *churn > 1 {
		return errors.New("churn must be in [0, 1]")
	}
	if *repairK < 0 {
		return errors.New("repairk must be >= 0")
	}
	if *httpAddr != "" && *connect != "" {
		return errors.New("-http and -connect are mutually exclusive")
	}
	if *datadir != "" && *connect != "" {
		return errors.New("-datadir applies to the serving side, not -connect mode")
	}
	spec, ok := algo.Get(*algoName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (registry has %s)", *algoName, strings.Join(algo.Names(), ", "))
	}
	if *slowMS < 0 {
		return errors.New("slowms must be >= 0")
	}

	// -slowlog turns on per-request tracing with an NDJSON sink; requests
	// whose total crosses -slowms land in the log with their per-phase
	// breakdown.
	var tracer *obs.Tracer
	if *slowlogPath != "" {
		out := io.Writer(os.Stderr)
		if *slowlogPath != "-" {
			f, err := os.Create(*slowlogPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		tracer = obs.NewTracer(obs.TracerOptions{
			SlowLog:       obs.NewSlowLog(out),
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
		fmt.Fprintf(w, "slowlog: %s (threshold %dms)\n", *slowlogPath, *slowMS)
	}

	if *clusterMode {
		if *httpAddr == "" {
			return errors.New("-cluster needs -http to listen on")
		}
		if *datadir != "" {
			return errors.New("-datadir applies to backend nodes, not the router")
		}
		var list []string
		for _, s := range strings.Split(*nodes, ",") {
			if s = strings.TrimSpace(s); s != "" {
				list = append(list, s)
			}
		}
		if len(list) == 0 {
			return errors.New("-cluster needs -nodes with at least one backend URL")
		}
		return serveCluster(w, *httpAddr, list, *replicas, *hedgeAfter, *drainTimeout)
	}

	if *connect != "" {
		return driveHTTP(w, httpDriveConfig{
			base: *connect, graphID: *graphID, load: *load, genKind: *genKind,
			trace: *trace, n: *n, genSeed: *genSeed, seed: *seed, spec: spec,
			seedSpace: *seedSpace, eps: *eps, scale: *scale, requests: *requests,
			concurrency: *concurrency, timeout: *timeout, warm: *warm,
			churn: *churn, compactEvery: *compactEvery,
		})
	}

	var g *graph.Graph
	var err error
	if *load != "" {
		if g, err = graphio.Load(*load); err != nil {
			return err
		}
	} else if g, err = buildGraph(*genKind, *n, *genSeed); err != nil {
		return err
	}
	if g.N() == 0 {
		return errors.New("empty graph")
	}

	st, recovered, err := openStore(g, *datadir, *walFlush)
	if err != nil {
		return err
	}
	defer st.Close()
	if recovered {
		fmt.Fprintf(w, "datadir: recovered %s: epoch %d, n=%d m=%d, fingerprint %s\n",
			*datadir, st.Epoch(), st.N(), st.M(), st.Fingerprint().Short())
	} else if *datadir != "" {
		fmt.Fprintf(w, "datadir: created %s\n", *datadir)
	}

	if *httpAddr != "" {
		// -http always traces (the ring behind /debug/traces is cheap at
		// HTTP request rates); -slowlog additionally attaches the NDJSON
		// sink built above.
		if tracer == nil {
			tracer = obs.NewTracer(obs.TracerOptions{})
		}
		return serveHTTP(w, st, *httpAddr,
			engine.Options{Capacity: *capacity, Shards: *shards, RepairK: *repairK, Workers: *workers},
			server.Options{MaxInflight: *maxInflight, DefaultTimeout: *timeout, Tracer: tracer},
			*drainTimeout)
	}

	e := engine.New(engine.Options{Capacity: *capacity, Shards: *shards, RepairK: *repairK, Workers: *workers})
	h := e.RegisterStore(st)
	// A recovered store supersedes the -gen/-load graph, so size the
	// workload off the store, not g.
	nv := st.N()
	fmt.Fprintf(w, "graph: n=%d m=%d  fingerprint: %s  shards: %d\n",
		nv, st.M(), st.Snapshot().Fingerprint().Short(), e.NumShards())
	fmt.Fprintf(w, "parallel: GOMAXPROCS %d (%d cpus), per-query workers %d\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), e.Workers())

	var work []request
	if *trace != "" {
		if work, err = readTrace(*trace, nv); err != nil {
			return err
		}
		if len(work) == 0 {
			return errors.New("trace contains no requests")
		}
		fmt.Fprintf(w, "trace: %d requests from %s\n", len(work), *trace)
	}

	// Hoisted out of the request loop: a per-request closure literal would
	// cost one heap allocation on the ~10^6 req/s synthetic hot path.
	neighborsOf := func(u int) []int32 { return st.Snapshot().Neighbors(u) }

	sp := makeSynthSpace(spec, *seedSpace, *eps, *scale)
	if *warm && *trace == "" {
		t0 := time.Now()
		for _, r := range sp.decomp {
			if _, err := r.issue(context.Background(), e, h); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "warm: %d %s decompositions in %v\n", *seedSpace, spec.Name, time.Since(t0).Round(time.Millisecond))
	}

	total := *requests
	if *trace != "" {
		total = len(work)
	}
	errs := make([]error, *concurrency)
	var timeouts, reads, writes, noops atomic.Uint64
	var lat obs.Histogram // per-request closed-loop latency
	t0 := time.Now()
	par.ForEach(*concurrency, *concurrency, func(_, client int) {
		rng := xrand.Stream(*seed, client, 0x5e12e)
		// Closed loop: each client issues its share back to back.
		for i := client; i < total; i += *concurrency {
			var r request
			if *trace != "" {
				r = work[i]
			} else {
				r = synthesize(rng, nv, sp, *churn, neighborsOf)
			}
			if r.write() {
				if n := writes.Add(1); *compactEvery > 0 && n%uint64(*compactEvery) == 0 {
					if _, cerr := st.Compact(); cerr != nil {
						errs[client] = cerr
						return
					}
				}
			} else {
				reads.Add(1)
			}
			ctx := context.Background()
			var tr *obs.Trace
			if tracer != nil {
				ctx, tr = tracer.Start(ctx, r.name())
			}
			cancel := context.CancelFunc(func() {})
			if *timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, *timeout)
			}
			tq := time.Now()
			noop, err := r.issue(ctx, e, h)
			lat.Observe(time.Since(tq))
			tr.Finish(0) // nil-safe; emits the slow-log event if over threshold
			cancel()
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
					timeouts.Add(1)
					continue
				}
				errs[client] = err
				return
			}
			if noop {
				noops.Add(1)
			}
		}
	})
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	est := e.Stats()
	lookups := est.Hits + est.Misses + est.Dedup
	hitRate := 0.0
	effRate := 0.0
	if lookups > 0 {
		hitRate = float64(est.Hits+est.Dedup) / float64(lookups)
		// Repaired misses never ran the full algorithm, so they count
		// toward the effective (recompute-avoiding) rate.
		effRate = float64(est.Hits+est.Dedup+est.RepairHits) / float64(lookups)
	}
	fmt.Fprintf(w, "served %d requests in %v with %d clients: %.0f req/s\n",
		total, elapsed.Round(time.Microsecond), *concurrency,
		float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "mix: %d reads (%.0f/s), %d writes (%.0f/s, %d no-ops)\n",
		reads.Load(), float64(reads.Load())/elapsed.Seconds(),
		writes.Load(), float64(writes.Load())/elapsed.Seconds(), noops.Load())
	fmt.Fprintf(w, "cache: %d hits, %d dedup joins, %d misses (hit rate %.1f%%), %d computations, %d evictions, %d batch queries\n",
		est.Hits, est.Dedup, est.Misses, 100*hitRate, est.Computations, est.Evictions, est.Queries)
	if *repairK > 0 {
		fmt.Fprintf(w, "repair: %d exact, %d repaired, %d recomputed (effective hit rate %.1f%%), %d fallbacks, %d clusters re-carved\n",
			est.Hits+est.Dedup, est.RepairHits, est.Misses-est.RepairHits, 100*effRate,
			est.RepairFallbacks, est.RepairedClusters)
	}
	printLatency(w, &lat)
	if tracer != nil {
		fmt.Fprintf(w, "slowlog: %d of %d traced requests crossed the %dms threshold (%d write errors)\n",
			tracer.Slow(), tracer.Finished(), *slowMS, tracer.SlowLog().WriteErrors())
	}
	if sst := st.Stats(); sst.Epoch > 0 || sst.Durable {
		fmt.Fprintf(w, "store: epoch %d (%d adds, %d dels, %d compactions), %d pending deltas (%d bytes) over %d patched vertices, graph now n=%d m=%d\n",
			sst.Epoch, sst.Adds, sst.Dels, sst.Compactions, sst.PendingDeltas, sst.DeltaBytes, sst.PatchedVertices, st.N(), st.M())
		if sst.Durable {
			fmt.Fprintf(w, "durable: dir %s, checkpoint epoch %d, %d wal syncs\n",
				st.Dir(), sst.CheckpointEpoch, sst.WALSyncs)
		}
	}
	if *timeout > 0 {
		fmt.Fprintf(w, "deadlines: %d of %d requests exceeded %v (%d engine cancellations)\n",
			timeouts.Load(), total, *timeout, est.Cancellations)
	}
	return nil
}

// printLatency reports the closed-loop per-request latency percentiles.
func printLatency(w io.Writer, lat *obs.Histogram) {
	s := lat.Snapshot()
	if s.Count == 0 {
		return
	}
	sum := s.Summarize()
	d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
	fmt.Fprintf(w, "latency: p50 %v  p90 %v  p99 %v  p99.9 %v  (mean %v over %d requests)\n",
		d(sum.P50), d(sum.P90), d(sum.P99), d(sum.P999),
		time.Duration(sum.Mean).Round(time.Microsecond), sum.Count)
}

// openStore wires the durability layer behind -datadir: recover an
// existing on-disk store (the loaded/generated graph is superseded by the
// recovered state), create a fresh durable store seeded from g, or fall
// back to a memory-only store when no directory is given. The boolean
// reports whether existing state was recovered.
func openStore(g *graph.Graph, dir string, flush time.Duration) (*store.Store, bool, error) {
	if dir == "" {
		return store.New(g), false, nil
	}
	// Durable stores always carry a WAL metrics bundle: the histograms cost
	// nothing until observed and /metrics exposes them per graph.
	opts := store.Options{Dir: dir, FlushInterval: flush, Metrics: obs.NewWALMetrics()}
	if store.Exists(dir) {
		st, err := store.Open(opts)
		return st, true, err
	}
	st, err := store.Create(g, opts)
	return st, false, err
}

// serveHTTP exposes the prepared store through the internal/server HTTP
// layer and blocks until SIGINT/SIGTERM, then drains gracefully: new
// requests get 503, in-flight ones finish (bounded by drainTimeout),
// durable state is flushed (WAL sync + hot-key persistence), and the final
// engine counters are reported. The listener comes up before prewarming so
// /healthz can answer 503-replaying while the cache is rebuilt from the
// previous life's hot keys.
func serveHTTP(w io.Writer, st *store.Store, addr string, eopts engine.Options, sopts server.Options, drainTimeout time.Duration) error {
	e := engine.New(eopts)
	srv := server.New(e, sopts)
	srv.SetReplaying(true)
	id, h := srv.AddStore(st)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "http: serving graph %s (n=%d m=%d) fingerprint %s with %d shards at http://%s\n",
		id, st.N(), st.M(), st.Snapshot().Fingerprint().Short(), e.NumShards(), ln.Addr())

	// Install the signal handler before serving: a SIGTERM landing between
	// the listener announcement and handler installation must drain, not
	// hard-kill with responses in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if warmed, err := srv.Prewarm(ctx); err != nil {
		fmt.Fprintf(w, "http: prewarm: %v\n", err)
	} else if warmed > 0 {
		fmt.Fprintf(w, "http: prewarmed %d cached results from persisted hot keys\n", warmed)
	}
	srv.SetReplaying(false)
	fmt.Fprintln(w, "http: ready")
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	fmt.Fprintln(w, "http: signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(w, "http: %v\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(w, "http: shutdown: %v\n", err)
	}
	est := e.Stats()
	fmt.Fprintf(w, "http: drained; cache: %d hits, %d dedup joins, %d misses, %d computations, %d cancellations\n",
		est.Hits, est.Dedup, est.Misses, est.Computations, est.Cancellations)
	sst := h.Store().Stats()
	fmt.Fprintf(w, "http: store epoch %d (%d adds, %d dels, %d compactions), %d pending deltas (%d bytes)\n",
		sst.Epoch, sst.Adds, sst.Dels, sst.Compactions, sst.PendingDeltas, sst.DeltaBytes)
	if sst.Durable {
		fmt.Fprintf(w, "http: durable state flushed to %s (checkpoint epoch %d, %d wal syncs)\n",
			st.Dir(), sst.CheckpointEpoch, sst.WALSyncs)
	}
	return nil
}

// serveCluster runs the coordinator tier: an internal/cluster router
// listening at addr, consistent-hashing graphs across the backend nodes.
// The router is stateless beyond its routing table, so draining is just a
// connection-level shutdown — backends hold the graphs.
func serveCluster(w io.Writer, addr string, nodes []string, replicas int, hedgeAfter, drainTimeout time.Duration) error {
	rt, err := cluster.New(cluster.Options{Nodes: nodes, Replicas: replicas, HedgeAfter: hedgeAfter})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cluster: routing across %d nodes at http://%s\n", len(nodes), ln.Addr())
	for i, n := range rt.Nodes() {
		fmt.Fprintf(w, "cluster: node %d = %s\n", i, n)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintln(w, "cluster: ready")
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(w, "cluster: signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(w, "cluster: shutdown: %v\n", err)
	}
	fmt.Fprintln(w, "cluster: drained")
	return nil
}

// httpDriveConfig carries the workload flags into the -connect client mode.
type httpDriveConfig struct {
	base, graphID, load, genKind, trace string
	n                                   int
	genSeed, seed                       uint64
	spec                                *algo.Spec
	seedSpace                           int
	eps, scale                          float64
	requests, concurrency               int
	timeout                             time.Duration
	warm                                bool
	churn                               float64
	compactEvery                        int
}

// formatString renders a graphio format as the wire format token of the
// upload endpoint ("el", "dimacs.gz", ...).
func formatString(path string) (string, error) {
	f, gzipped, err := graphio.FormatForPath(path)
	if err != nil {
		return "", err
	}
	var s string
	switch f {
	case graphio.EdgeList:
		s = "el"
	case graphio.DIMACS:
		s = "dimacs"
	case graphio.METIS:
		s = "metis"
	default:
		return "", fmt.Errorf("unsupported format %v", f)
	}
	if gzipped {
		s += ".gz"
	}
	return s, nil
}

// driveHTTP is the load generator's network mode: the same closed-loop
// seeded workloads (synthetic mix, churn, trace replay) issued against a
// remote serving layer over real sockets through the typed client. The
// graph is resolved in order of preference: an existing server-side id
// (-graphid), an uploaded file (-load), or a server-side generate (-gen).
func driveHTTP(w io.Writer, cfg httpDriveConfig) error {
	// Hinted 503 sheds (the admission gate's "overloaded, come back" with a
	// Retry-After) are retried inside the client with bounded jittered
	// backoff; only sheds that survive the budget — or carry no hint, i.e.
	// the server is draining — reach the classification switch below.
	c := server.NewClient(cfg.base, nil).WithRetry(server.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second,
	})
	ctx := context.Background()

	var info *server.GraphInfo
	var err error
	switch {
	case cfg.graphID != "":
		info, err = c.GraphInfo(ctx, cfg.graphID)
	case cfg.load != "":
		var format string
		if format, err = formatString(cfg.load); err != nil {
			return err
		}
		var f *os.File
		if f, err = os.Open(cfg.load); err != nil {
			return err
		}
		info, err = c.Upload(ctx, format, f)
		f.Close()
	default:
		info, err = c.Generate(ctx, cfg.genKind, cfg.n, cfg.genSeed)
	}
	if err != nil {
		return err
	}
	n := info.N
	fmt.Fprintf(w, "connect: %s graph %s  n=%d m=%d  fingerprint: %s\n",
		cfg.base, info.ID, info.N, info.M, info.Fingerprint[:12])

	var work []request
	if cfg.trace != "" {
		if work, err = readTrace(cfg.trace, n); err != nil {
			return err
		}
		if len(work) == 0 {
			return errors.New("trace contains no requests")
		}
		fmt.Fprintf(w, "trace: %d requests from %s\n", len(work), cfg.trace)
	}

	sp := makeSynthSpace(cfg.spec, cfg.seedSpace, cfg.eps, cfg.scale)
	if cfg.warm && cfg.trace == "" {
		t0 := time.Now()
		for _, r := range sp.decomp {
			if _, err := r.issueHTTP(ctx, c, info.ID); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "warm: %d %s decompositions in %v\n", cfg.seedSpace, cfg.spec.Name, time.Since(t0).Round(time.Millisecond))
	}

	// Deletion sampling over the wire: a radius-1 ball query returns the
	// center first, then its current neighbors.
	neighborsOf := func(u int) []int32 {
		qr, qerr := c.Query(ctx, info.ID, server.QueryRequest{Op: "ball", Vertices: []int32{int32(u)}, Radius: 1})
		if qerr != nil || len(qr.Balls) != 1 || len(qr.Balls[0]) < 2 {
			return nil
		}
		return qr.Balls[0][1:]
	}

	total := cfg.requests
	if cfg.trace != "" {
		total = len(work)
	}
	errs := make([]error, cfg.concurrency)
	var timeouts, shed, reads, writes, noops atomic.Uint64
	var lat obs.Histogram // over-the-wire closed-loop latency
	t0 := time.Now()
	par.ForEach(cfg.concurrency, cfg.concurrency, func(_, client int) {
		rng := xrand.Stream(cfg.seed, client, 0x5e12e)
		for i := client; i < total; i += cfg.concurrency {
			var r request
			if cfg.trace != "" {
				r = work[i]
			} else {
				r = synthesize(rng, n, sp, cfg.churn, neighborsOf)
			}
			if r.write() {
				if nw := writes.Add(1); cfg.compactEvery > 0 && nw%uint64(cfg.compactEvery) == 0 {
					if _, err := c.Compact(ctx, info.ID); err != nil {
						errs[client] = err
						return
					}
				}
			} else {
				reads.Add(1)
			}
			rctx := ctx
			cancel := context.CancelFunc(func() {})
			if cfg.timeout > 0 {
				rctx, cancel = context.WithTimeout(ctx, cfg.timeout)
			}
			tq := time.Now()
			noop, err := r.issueHTTP(rctx, c, info.ID)
			lat.Observe(time.Since(tq))
			cancel()
			switch {
			case err == nil:
				// A mutation that found nothing to do (edge already there,
				// or already deleted by a concurrent client) is a no-op,
				// not an error and not an effective write.
				if noop {
					noops.Add(1)
				}
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
				server.IsStatus(err, http.StatusGatewayTimeout):
				// Client-side deadline (the server sees the disconnect and
				// cancels the compute) or server-side 504.
				timeouts.Add(1)
			case server.IsStatus(err, http.StatusServiceUnavailable):
				// A shed that survived the client's hinted-retry budget, or
				// a drain shed (no hint, never retried).
				shed.Add(1)
			default:
				errs[client] = err
				return
			}
		}
	})
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "served %d requests in %v with %d clients over HTTP: %.0f req/s\n",
		total, elapsed.Round(time.Microsecond), cfg.concurrency,
		float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "mix: %d reads (%.0f/s), %d writes (%.0f/s, %d no-ops), %d timeouts, %d shed, %d shed retries\n",
		reads.Load(), float64(reads.Load())/elapsed.Seconds(),
		writes.Load(), float64(writes.Load())/elapsed.Seconds(), noops.Load(),
		timeouts.Load(), shed.Load(), c.Retries())
	printLatency(w, &lat)
	if info, err = c.GraphInfo(ctx, info.ID); err == nil {
		fmt.Fprintf(w, "store: epoch %d (%d adds, %d dels, %d compactions), %d pending deltas, graph now n=%d m=%d\n",
			info.Epoch, info.Adds, info.Dels, info.Compactions, info.PendingDeltas, info.N, info.M)
	}
	return nil
}
