// Command serve loads a graph, warms the concurrent decomposition engine,
// and drives it with a request workload, reporting throughput and cache
// effectiveness. The workload is either a request trace replayed from a
// file (-trace) or a synthetic closed-loop load generated from a seeded
// RNG, so runs are reproducible.
//
// Usage:
//
//	serve -gen gnp -n 5000 -requests 20000 -concurrency 8
//	serve -load web.metis.gz -requests 10000 -seedspace 4
//	serve -gen grid -n 10000 -trace trace.txt -concurrency 16
//
// Trace files contain one request per line ('#' starts a comment):
//
//	changli eps=0.3 seed=4 [scale=0.05] [skip2=true]
//	cover lambda=0.5 seed=2
//	net lambda=0.5 seed=1
//	cluster v=17 eps=0.3 seed=4 [scale=0.05]
//	ball v=17 k=2
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/par"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// buildGraph constructs the requested generated topology on roughly n
// vertices (mirrors cmd/ldd's families).
func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("n must be >= 2")
	}
	rng := xrand.New(seed + 0x5e7e)
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Torus(side, side), nil
	case "gnp":
		return gen.GNP(n, 6/float64(n), rng), nil
	case "regular":
		return gen.RandomRegular(n, 4, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

// request is one parsed workload operation.
type request struct {
	op     string // changli | cover | net | cluster | ball
	cl     ldd.Params
	en     ldd.ENParams
	net    netdecomp.Params
	vertex int32
	radius int
}

// issue executes the request against the engine.
func (r request) issue(e *engine.Engine, h engine.Handle) error {
	switch r.op {
	case "changli":
		_, err := e.ChangLi(h, r.cl)
		return err
	case "cover":
		_, err := e.SparseCover(h, r.en)
		return err
	case "net":
		_, err := e.NetDecomp(h, r.net)
		return err
	case "cluster":
		_, err := e.ClusterOf(h, r.cl, []int32{r.vertex})
		return err
	case "ball":
		_, err := e.Balls(h, []int32{r.vertex}, r.radius, 1)
		return err
	default:
		return fmt.Errorf("unknown op %q", r.op)
	}
}

// parseTraceLine parses one "op key=value ..." request line.
func parseTraceLine(text string, n int) (request, bool, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return request{}, false, nil
	}
	r := request{op: fields[0]}
	kv := make(map[string]string, len(fields)-1)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return r, false, fmt.Errorf("bad token %q", f)
		}
		kv[k] = v
	}
	getF := func(key string, def float64) (float64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	getI := func(key string, def int) (int, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	var err error
	switch r.op {
	case "changli", "cluster":
		if r.cl.Epsilon, err = getF("eps", 0.3); err != nil {
			return r, false, err
		}
		if r.cl.Scale, err = getF("scale", 0.05); err != nil {
			return r, false, err
		}
		var seed int
		if seed, err = getI("seed", 1); err != nil {
			return r, false, err
		}
		r.cl.Seed = uint64(seed)
		r.cl.SkipPhase2 = kv["skip2"] == "true"
	case "cover", "net":
		var lambda float64
		if lambda, err = getF("lambda", 0.5); err != nil {
			return r, false, err
		}
		var seed int
		if seed, err = getI("seed", 1); err != nil {
			return r, false, err
		}
		if r.op == "cover" {
			r.en = ldd.ENParams{Lambda: lambda, Seed: uint64(seed)}
		} else {
			r.net = netdecomp.Params{Lambda: lambda, Seed: uint64(seed)}
		}
	case "ball":
		if r.radius, err = getI("k", 2); err != nil {
			return r, false, err
		}
	default:
		return r, false, fmt.Errorf("unknown op %q", r.op)
	}
	if r.op == "cluster" || r.op == "ball" {
		var v int
		if v, err = getI("v", 0); err != nil {
			return r, false, err
		}
		if v < 0 || v >= n {
			return r, false, fmt.Errorf("vertex %d out of range [0, %d)", v, n)
		}
		r.vertex = int32(v)
	}
	return r, true, nil
}

// readTrace parses a trace file into a request list.
func readTrace(path string, n int) ([]request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []request
	s := bufio.NewScanner(f)
	line := 0
	for s.Scan() {
		line++
		r, ok, err := parseTraceLine(s.Text(), n)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if ok {
			out = append(out, r)
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// synthesize generates a reproducible closed-loop workload: each worker
// draws its own request stream from xrand.Stream(seed, worker, ·), mixing
// decomposition requests over a small parameter space (so the cache can
// pay off) with cluster and ball point queries against those same
// decompositions.
func synthesize(rng *xrand.RNG, n, seedSpace int, eps, scale float64) request {
	p := ldd.Params{Epsilon: eps, Scale: scale, Seed: uint64(rng.Intn(seedSpace))}
	switch roll := rng.Intn(10); {
	case roll < 4:
		return request{op: "changli", cl: p}
	case roll < 7:
		return request{op: "cluster", cl: p, vertex: int32(rng.Intn(n))}
	case roll < 9:
		return request{op: "ball", vertex: int32(rng.Intn(n)), radius: 1 + rng.Intn(3)}
	default:
		return request{op: "cover", en: ldd.ENParams{Lambda: 0.5, Seed: uint64(rng.Intn(seedSpace))}}
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(w)
	load := fs.String("load", "", "graph file to load (format by extension; see internal/graphio)")
	genKind := fs.String("gen", "gnp", "generated family when -load is empty: cycle|path|grid|torus|gnp|regular")
	n := fs.Int("n", 2000, "approximate vertex count for -gen")
	genSeed := fs.Uint64("genseed", 1, "generator seed")
	eps := fs.Float64("eps", 0.3, "epsilon for synthetic decomposition requests")
	scale := fs.Float64("scale", 0.05, "radius scale for synthetic decomposition requests")
	requests := fs.Int("requests", 10000, "synthetic request count (ignored with -trace)")
	concurrency := fs.Int("concurrency", par.Workers(0), "closed-loop client goroutines")
	seedSpace := fs.Int("seedspace", 4, "distinct decomposition seeds in the synthetic workload")
	capacity := fs.Int("capacity", 0, "engine cache capacity (0 = default)")
	seed := fs.Uint64("seed", 1, "workload seed")
	trace := fs.String("trace", "", "replay this request trace instead of synthesizing")
	warm := fs.Bool("warm", true, "precompute the synthetic seed space before timing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *concurrency <= 0 || *seedSpace <= 0 {
		return errors.New("requests, concurrency, and seedspace must be positive")
	}

	var g *graph.Graph
	var err error
	if *load != "" {
		if g, err = graphio.Load(*load); err != nil {
			return err
		}
	} else if g, err = buildGraph(*genKind, *n, *genSeed); err != nil {
		return err
	}
	if g.N() == 0 {
		return errors.New("empty graph")
	}

	e := engine.New(engine.Options{Capacity: *capacity})
	h := e.Register(g)
	fmt.Fprintf(w, "graph: %v  fingerprint: %s\n", g, h.Fingerprint().Short())

	var work []request
	if *trace != "" {
		if work, err = readTrace(*trace, g.N()); err != nil {
			return err
		}
		if len(work) == 0 {
			return errors.New("trace contains no requests")
		}
		fmt.Fprintf(w, "trace: %d requests from %s\n", len(work), *trace)
	}

	if *warm && *trace == "" {
		t0 := time.Now()
		for s := 0; s < *seedSpace; s++ {
			if _, err := e.ChangLi(h, ldd.Params{Epsilon: *eps, Scale: *scale, Seed: uint64(s)}); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "warm: %d decompositions in %v\n", *seedSpace, time.Since(t0).Round(time.Millisecond))
	}

	total := *requests
	if *trace != "" {
		total = len(work)
	}
	errs := make([]error, *concurrency)
	t0 := time.Now()
	par.ForEach(*concurrency, *concurrency, func(_, client int) {
		rng := xrand.Stream(*seed, client, 0x5e12e)
		// Closed loop: each client issues its share back to back.
		for i := client; i < total; i += *concurrency {
			var r request
			if *trace != "" {
				r = work[i]
			} else {
				r = synthesize(rng, g.N(), *seedSpace, *eps, *scale)
			}
			if err := r.issue(e, h); err != nil {
				errs[client] = err
				return
			}
		}
	})
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	st := e.Stats()
	lookups := st.Hits + st.Misses + st.Dedup
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(st.Hits+st.Dedup) / float64(lookups)
	}
	fmt.Fprintf(w, "served %d requests in %v with %d clients: %.0f req/s\n",
		total, elapsed.Round(time.Microsecond), *concurrency,
		float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "cache: %d hits, %d dedup joins, %d misses (hit rate %.1f%%), %d computations, %d evictions, %d batch queries\n",
		st.Hits, st.Dedup, st.Misses, 100*hitRate, st.Computations, st.Evictions, st.Queries)
	return nil
}
