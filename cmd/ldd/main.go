// Command ldd runs any registered decomposition algorithm on a generated
// graph and prints cluster statistics. Algorithms are resolved through the
// unified registry (internal/algo), so every family — chang-li,
// elkin-neiman, blackbox, mpx, weighted, sparsecover, netdecomp — is
// invocable by name, and -timeout puts a deadline on the run.
//
// Usage:
//
//	ldd -graph cycle -n 2000 -eps 0.2 -algo chang-li [-seed 1] [-scale 0.01] [-repair]
//	ldd -graph grid -n 4000 -algo netdecomp -params "lambda=0.4"
//	ldd -graph gnp -n 100000 -algo chang-li -timeout 2s
//
// Graphs: cycle, path, grid (n = side²), torus, complete, tree (binary),
// gnp (p = 4/n), regular (d=4), cliquepath, hypercube (n = 2^⌈log2 n⌉).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ldd:", err)
		os.Exit(1)
	}
}

// buildGraph constructs the requested topology on roughly n vertices.
func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("n must be >= 2")
	}
	rng := xrand.New(seed + 0x96af)
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Torus(side, side), nil
	case "complete":
		return gen.Complete(n), nil
	case "tree":
		depth := int(math.Ceil(math.Log2(float64(n + 1))))
		return gen.CompleteDAryTree(2, depth-1), nil
	case "gnp":
		return gen.GNP(n, 4/float64(n), rng), nil
	case "regular":
		return gen.RandomRegular(n, 4, rng), nil
	case "cliquepath":
		return gen.CliquePlusPath(n/2, n-n/2), nil
	case "hypercube":
		d := int(math.Ceil(math.Log2(float64(n))))
		return gen.Hypercube(d), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", kind)
	}
}

// specParams builds the registry parameter bag from the CLI flags: -eps
// maps onto the spec's eps (or lambda) parameter, and seed/scale/repair are
// forwarded when the spec declares them. -params tokens override.
func specParams(spec *algo.Spec, eps float64, seed uint64, scale float64, repair bool, extra string) (algo.Params, error) {
	p, err := algo.ParseParamString(extra)
	if err != nil {
		return nil, err
	}
	set := func(key, val string) {
		if _, overridden := p[key]; !overridden && spec.Has(key) {
			p[key] = val
		}
	}
	set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	set("lambda", strconv.FormatFloat(eps, 'g', -1, 64))
	set("seed", strconv.FormatUint(seed, 10))
	set("scale", strconv.FormatFloat(scale, 'g', -1, 64))
	if repair {
		set("repair", "true")
	}
	return p, nil
}

// largestCluster returns the size of the biggest cluster in d.
func largestCluster(d *ldd.Decomposition) int {
	counts := make([]int, d.NumClusters)
	best := 0
	for _, c := range d.ClusterOf {
		if c >= 0 {
			counts[c]++
			if counts[c] > best {
				best = counts[c]
			}
		}
	}
	return best
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ldd", flag.ContinueOnError)
	graphKind := fs.String("graph", "cycle", "graph family")
	n := fs.Int("n", 1000, "approximate vertex count")
	eps := fs.Float64("eps", 0.2, "epsilon (unclustered fraction bound / lambda)")
	algoName := fs.String("algo", "chang-li", "registry algorithm: "+strings.Join(algo.Names(), " | "))
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0, "radius scale (0 = paper constants)")
	repair := fs.Bool("repair", false, "repair cluster diameters to the ideal bound")
	timeout := fs.Duration("timeout", 0, "deadline for the run (0 = none)")
	extra := fs.String("params", "", "extra key=value registry parameters (override flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, ok := algo.Get(*algoName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (registry has %s)", *algoName, strings.Join(algo.Names(), ", "))
	}
	g, err := buildGraph(*graphKind, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s %v (diameter sample: eccentricity(0) = %d)\n", *graphKind, g, g.Eccentricity(0))

	p, err := specParams(spec, *eps, *seed, *scale, *repair, *extra)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := spec.RunSpec(ctx, g, p)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("run exceeded the %v deadline: %w", *timeout, err)
		}
		return err
	}
	fmt.Fprintf(w, "%s: %s\n", spec.Name, res.Summary())

	// Partition-shaped results get the separation and diameter report.
	if d, ok := res.Raw.(*ldd.Decomposition); ok {
		ok, u, v := d.ValidateSeparation(g)
		fmt.Fprintf(w, "separation valid: %v", ok)
		if !ok {
			fmt.Fprintf(w, " (violated at %d-%d)", u, v)
		}
		fmt.Fprintln(w)
		// The weak-diameter report costs O(|C|) BFS runs per cluster; on a
		// huge cluster that dwarfs the decomposition itself (and ignores
		// -timeout), so it is skipped rather than silently hanging.
		if big := largestCluster(d); big <= 10000 {
			if wd := d.MaxWeakDiameter(g); wd >= 0 {
				fmt.Fprintf(w, "max weak diameter: %d\n", wd)
			}
		} else {
			fmt.Fprintf(w, "max weak diameter: skipped (largest cluster has %d vertices)\n", big)
		}
	}
	return nil
}
