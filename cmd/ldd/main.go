// Command ldd runs a low-diameter decomposition on a generated graph and
// prints cluster statistics.
//
// Usage:
//
//	ldd -graph cycle -n 2000 -eps 0.2 -algo chang-li [-seed 1] [-scale 0.01] [-repair]
//
// Graphs: cycle, path, grid (n = side²), torus, complete, tree (binary),
// gnp (p = 4/n), regular (d=4), cliquepath, hypercube (n = 2^⌈log2 n⌉).
// Algorithms: chang-li (Theorem 1.1), elkin-neiman (Lemma C.1), blackbox
// (Section 1.6), mpx (edge version).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ldd:", err)
		os.Exit(1)
	}
}

// buildGraph constructs the requested topology on roughly n vertices.
func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("n must be >= 2")
	}
	rng := xrand.New(seed + 0x96af)
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Torus(side, side), nil
	case "complete":
		return gen.Complete(n), nil
	case "tree":
		depth := int(math.Ceil(math.Log2(float64(n + 1))))
		return gen.CompleteDAryTree(2, depth-1), nil
	case "gnp":
		return gen.GNP(n, 4/float64(n), rng), nil
	case "regular":
		return gen.RandomRegular(n, 4, rng), nil
	case "cliquepath":
		return gen.CliquePlusPath(n/2, n-n/2), nil
	case "hypercube":
		d := int(math.Ceil(math.Log2(float64(n))))
		return gen.Hypercube(d), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", kind)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ldd", flag.ContinueOnError)
	graphKind := fs.String("graph", "cycle", "graph family")
	n := fs.Int("n", 1000, "approximate vertex count")
	eps := fs.Float64("eps", 0.2, "epsilon (unclustered fraction bound)")
	algo := fs.String("algo", "chang-li", "chang-li | elkin-neiman | blackbox | mpx")
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0, "radius scale (0 = paper constants)")
	repair := fs.Bool("repair", false, "repair cluster diameters to the ideal bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildGraph(*graphKind, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s %v (diameter sample: eccentricity(0) = %d)\n", *graphKind, g, g.Eccentricity(0))

	if *algo == "mpx" {
		r := ldd.MPX(g, ldd.ENParams{Lambda: *eps, Seed: *seed})
		fmt.Fprintf(w, "mpx: clusters=%d cutEdges=%d (%.4f of m) rounds=%d\n",
			r.NumClusters, len(r.CutEdges), float64(len(r.CutEdges))/float64(max(g.M(), 1)), r.Rounds)
		return nil
	}

	var algoID core.Decomposer
	switch *algo {
	case "chang-li":
		algoID = core.DecomposerChangLi
	case "elkin-neiman":
		algoID = core.DecomposerElkinNeiman
	case "blackbox":
		algoID = core.DecomposerBlackbox
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	d, err := core.Decompose(g, core.DecomposeOptions{
		Epsilon:        *eps,
		Algorithm:      algoID,
		Seed:           *seed,
		Scale:          *scale,
		RepairDiameter: *repair,
	})
	if err != nil {
		return err
	}
	ok, u, v := d.ValidateSeparation(g)
	fmt.Fprintf(w, "%s: clusters=%d unclustered=%d (%.4f of n, bound %.2f) rounds=%d\n",
		*algo, d.NumClusters, d.UnclusteredCount(), d.UnclusteredFraction(), *eps, d.Rounds)
	fmt.Fprintf(w, "separation valid: %v", ok)
	if !ok {
		fmt.Fprintf(w, " (violated at %d-%d)", u, v)
	}
	fmt.Fprintln(w)
	if wd := d.MaxWeakDiameter(g); wd >= 0 {
		fmt.Fprintf(w, "max weak diameter: %d\n", wd)
	}
	return nil
}
