package main

import (
	"io"
	"strings"
	"testing"
)

func TestBuildGraphFamilies(t *testing.T) {
	for _, kind := range []string{
		"cycle", "path", "grid", "torus", "complete", "tree",
		"gnp", "regular", "cliquepath", "hypercube",
	} {
		g, err := buildGraph(kind, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 2 {
			t.Fatalf("%s: degenerate graph n=%d", kind, g.N())
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := buildGraph("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := buildGraph("cycle", 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"chang-li", "elkin-neiman", "blackbox", "mpx"} {
		args := []string{"-graph", "cycle", "-n", "200", "-eps", "0.3", "-algo", algo, "-scale", "0.05"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-algo", "quantum"}, io.Discard); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	if err := run([]string{"-graph", "nonsense"}, io.Discard); err == nil {
		t.Fatal("bad graph accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "flag") {
		t.Fatal("bad flag accepted")
	}
}

func TestRunWithRepair(t *testing.T) {
	if err := run([]string{"-graph", "cycle", "-n", "300", "-eps", "0.3", "-repair"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegistryFamilies(t *testing.T) {
	for _, algoName := range []string{"weighted", "sparsecover", "netdecomp", "en"} {
		args := []string{"-graph", "cycle", "-n", "150", "-eps", "0.3", "-algo", algoName, "-scale", "0.05"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%s: %v", algoName, err)
		}
	}
}

func TestRunWithParamsOverride(t *testing.T) {
	var out strings.Builder
	args := []string{"-graph", "cycle", "-n", "200", "-algo", "chang-li",
		"-scale", "0.05", "-params", "eps=0.4 skip2=true"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chang-li") && !strings.Contains(out.String(), "changli") {
		t.Fatalf("algorithm name missing from output:\n%s", out.String())
	}
}

func TestRunDeadline(t *testing.T) {
	// A 1ns deadline must abort the run with a deadline error.
	err := run([]string{"-graph", "cycle", "-n", "2000", "-eps", "0.1", "-timeout", "1ns"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline error", err)
	}
}

func TestRepairReachesAllDecomposers(t *testing.T) {
	// -repair must actually run the diameter cleanup for every family that
	// supports it (it used to be silently dropped for non-changli algos).
	for _, algoName := range []string{"chang-li", "elkin-neiman", "blackbox", "weighted"} {
		args := []string{"-graph", "cycle", "-n", "200", "-eps", "0.3", "-scale", "0.05",
			"-algo", algoName, "-repair"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%s -repair: %v", algoName, err)
		}
	}
}
