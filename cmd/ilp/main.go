// Command ilp builds a packing or covering problem on a generated graph and
// approximates it through the algorithm registry (internal/algo): the
// Chang–Li (PODC 2023) solvers, the GKM17 baseline, or the centralized
// local-solver dispatcher, all invocable by name and deadline-bounded with
// -timeout. It reports value, ratio against the exact optimum when one is
// computable, and the LOCAL round complexity.
//
// Usage:
//
//	ilp -problem mis -graph cycle -n 200 -eps 0.25 -algo chang-li
//	ilp -problem mds -graph tree -n 60 -algo gkm -scale 0.4
//	ilp -problem vc -graph grid -n 400 -algo solve -timeout 5s
//
// Problems: mis, vc, mds, kdom (use -k), matching. -algo chang-li resolves
// to the packing or covering solver by the problem's kind; any registry
// ILP name (packing, covering, gkm, solve) is accepted directly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ilp:", err)
		os.Exit(1)
	}
}

func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("n must be >= 2")
	}
	rng := xrand.New(seed + 0x11b)
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Torus(side, side), nil
	case "tree":
		return gen.RandomTree(n, rng), nil
	case "btree":
		depth := int(math.Ceil(math.Log2(float64(n + 1))))
		return gen.CompleteDAryTree(2, depth-1), nil
	case "gnp":
		return gen.GNP(n, 4/float64(n), rng), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", kind)
	}
}

// problemOf maps the CLI problem name to the typed problem.
func problemOf(name string) (problems.Problem, error) {
	switch name {
	case "mis":
		return problems.MIS, nil
	case "vc":
		return problems.MinVertexCover, nil
	case "mds":
		return problems.MinDominatingSet, nil
	case "matching":
		return problems.MaxMatching, nil
	case "kdom":
		return problems.KDominatingSet, nil
	default:
		return 0, fmt.Errorf("unknown problem %q (want mis|vc|mds|kdom|matching)", name)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ilp", flag.ContinueOnError)
	probName := fs.String("problem", "mis", "mis | vc | mds | kdom | matching")
	graphKind := fs.String("graph", "cycle", "graph family")
	n := fs.Int("n", 200, "approximate vertex count")
	k := fs.Int("k", 2, "distance for kdom")
	eps := fs.Float64("eps", 0.25, "approximation parameter")
	algoName := fs.String("algo", "chang-li", "chang-li | gkm | packing | covering | solve")
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0, "radius scale (0 = paper constants)")
	prep := fs.Int("prep", 3, "preparation decompositions (0 = paper's 16 ln n)")
	timeout := fs.Duration("timeout", 0, "deadline for the solve (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := problemOf(*probName)
	if err != nil {
		return err
	}
	if prob == problems.KDominatingSet && *k < 1 {
		return fmt.Errorf("kdom needs k >= 1, got %d", *k)
	}
	g, err := buildGraph(*graphKind, *n, *seed)
	if err != nil {
		return err
	}

	// chang-li resolves to the Theorem 1.2 / 1.3 solver by problem kind;
	// anything else must be an ILP-capable registry name.
	name := *algoName
	if name == "chang-li" {
		if prob.Kind() == ilp.Packing {
			name = "packing"
		} else {
			name = "covering"
		}
	}
	spec, ok := algo.Get(name)
	if !ok || spec.Caps.Kind != algo.KindILP {
		return fmt.Errorf("unknown ILP algorithm %q (want chang-li, gkm, packing, covering, or solve)", *algoName)
	}

	p := algo.Params{
		"problem": *probName,
		"k":       strconv.Itoa(*k),
	}
	setIf := func(key, val string) {
		if spec.Has(key) {
			p[key] = val
		}
	}
	setIf("eps", strconv.FormatFloat(*eps, 'g', -1, 64))
	setIf("seed", strconv.FormatUint(*seed, 10))
	setIf("scale", strconv.FormatFloat(*scale, 'g', -1, 64))
	setIf("prep", strconv.Itoa(*prep))

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := spec.RunSpec(ctx, g, p)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("solve exceeded the %v deadline: %w", *timeout, err)
		}
		return err
	}

	fmt.Fprintf(w, "%s on %v via %s:\n", prob, g, spec.Name)
	fmt.Fprintf(w, "value=%d rounds=%d feasible=%v", res.Value, res.Rounds, res.Feasible)

	// Verification against the problem semantics (not just the ILP).
	var verified bool
	if prob == problems.KDominatingSet {
		verified = problems.VerifyK(prob, *k, g, res.Solution)
	} else {
		verified = problems.Verify(prob, g, res.Solution)
	}
	if !verified {
		fmt.Fprintln(w)
		return fmt.Errorf("verification failed: solution is not a valid %s", prob)
	}

	// Ratio against the exact optimum when a poly-time oracle applies.
	if optVal, oerr := problems.ExactOptimum(prob, g); oerr == nil && optVal > 0 {
		ratio := float64(res.Value) / float64(optVal)
		fmt.Fprintf(w, " optimum=%d\n", optVal)
		target := 1 - *eps
		cmp := ">="
		if prob.Kind() == ilp.Covering {
			target = 1 + *eps
			cmp = "<="
		}
		fmt.Fprintf(w, "ratio %.4f (target %s %.4f, exact local solves: %v)\n",
			ratio, cmp, target, res.Exact)
	} else {
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "verified: valid %s\n", prob)
	return nil
}
