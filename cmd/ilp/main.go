// Command ilp builds a packing or covering problem on a generated graph and
// approximates it with the Chang–Li (PODC 2023) algorithms or the GKM17
// baseline, reporting value, ratio against the exact optimum when one is
// computable, and the LOCAL round complexity.
//
// Usage:
//
//	ilp -problem mis -graph cycle -n 200 -eps 0.25 -algo chang-li
//
// Problems: mis, vc, mds, kdom (use -k), matching.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ilp:", err)
		os.Exit(1)
	}
}

func buildGraph(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("n must be >= 2")
	}
	rng := xrand.New(seed + 0x11b)
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return gen.Torus(side, side), nil
	case "tree":
		return gen.RandomTree(n, rng), nil
	case "btree":
		depth := int(math.Ceil(math.Log2(float64(n + 1))))
		return gen.CompleteDAryTree(2, depth-1), nil
	case "gnp":
		return gen.GNP(n, 4/float64(n), rng), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", kind)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ilp", flag.ContinueOnError)
	probName := fs.String("problem", "mis", "mis | vc | mds | kdom | matching")
	graphKind := fs.String("graph", "cycle", "graph family")
	n := fs.Int("n", 200, "approximate vertex count")
	k := fs.Int("k", 2, "distance for kdom")
	eps := fs.Float64("eps", 0.25, "approximation parameter")
	algoName := fs.String("algo", "chang-li", "chang-li | gkm")
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0, "radius scale (0 = paper constants)")
	prep := fs.Int("prep", 3, "preparation decompositions (0 = paper's 16 ln n)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildGraph(*graphKind, *n, *seed)
	if err != nil {
		return err
	}
	var algo core.Solver
	switch *algoName {
	case "chang-li":
		algo = core.SolverChangLi
	case "gkm":
		algo = core.SolverGKM
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	opts := core.Options{
		Epsilon: *eps, Algorithm: algo, Seed: *seed, Scale: *scale, PrepRuns: *prep,
	}

	var prob problems.Problem
	switch *probName {
	case "mis":
		prob = problems.MIS
	case "vc":
		prob = problems.MinVertexCover
	case "mds":
		prob = problems.MinDominatingSet
	case "matching":
		prob = problems.MaxMatching
	case "kdom":
		inst, err := problems.BuildK(*k, g, nil)
		if err != nil {
			return err
		}
		rep, err := core.SolveILP(inst, opts)
		if err != nil {
			return err
		}
		printReport(w, fmt.Sprintf("%d-distance dominating set", *k), g, rep)
		if !problems.VerifyK(problems.KDominatingSet, *k, g, rep.Solution) {
			return errors.New("verification failed: not a k-dominating set")
		}
		fmt.Fprintln(w, "verified: valid k-dominating set")
		return nil
	default:
		return fmt.Errorf("unknown problem %q", *probName)
	}

	rep, err := core.Solve(prob, g, opts)
	if err != nil {
		return err
	}
	printReport(w, prob.String(), g, rep)
	if rep.Optimum >= 0 {
		target := 1 - *eps
		cmp := ">="
		if rep.Kind == ilp.Covering {
			target = 1 + *eps
			cmp = "<="
		}
		fmt.Fprintf(w, "ratio %.4f (target %s %.4f, exact local solves: %v)\n",
			rep.Ratio, cmp, target, rep.Exact)
	}
	return nil
}

func printReport(w io.Writer, name string, g *graph.Graph, rep *core.Report) {
	fmt.Fprintf(w, "%s on %v via %s:\n", name, g, rep.Algorithm)
	fmt.Fprintf(w, "value=%d rounds=%d feasible=%v", rep.Value, rep.Rounds, rep.Feasible)
	if rep.Optimum >= 0 {
		fmt.Fprintf(w, " optimum=%d", rep.Optimum)
	}
	fmt.Fprintln(w)
}
