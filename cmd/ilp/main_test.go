package main

import (
	"io"
	"testing"
)

func TestRunProblems(t *testing.T) {
	cases := [][]string{
		{"-problem", "mis", "-graph", "cycle", "-n", "80", "-prep", "2"},
		{"-problem", "vc", "-graph", "btree", "-n", "63", "-prep", "2"},
		{"-problem", "mds", "-graph", "tree", "-n", "60", "-prep", "2"},
		{"-problem", "matching", "-graph", "path", "-n", "40", "-prep", "2"},
		{"-problem", "kdom", "-graph", "cycle", "-n", "60", "-k", "2", "-prep", "2"},
		{"-problem", "mis", "-graph", "cycle", "-n", "60", "-algo", "gkm", "-scale", "0.4"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	bad := [][]string{
		{"-problem", "tsp"},
		{"-graph", "moebius"},
		{"-algo", "quantum"},
		{"-problem", "kdom", "-k", "0"},
	}
	for _, args := range bad {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestBuildGraphILP(t *testing.T) {
	for _, kind := range []string{"cycle", "path", "grid", "torus", "tree", "btree", "gnp"} {
		g, err := buildGraph(kind, 50, 2)
		if err != nil || g.N() < 2 {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildGraph("x", 50, 2); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestRunRegistryILPNames(t *testing.T) {
	cases := [][]string{
		{"-problem", "mis", "-graph", "cycle", "-n", "60", "-algo", "packing", "-prep", "2"},
		{"-problem", "vc", "-graph", "cycle", "-n", "60", "-algo", "covering", "-prep", "2"},
		{"-problem", "mis", "-graph", "cycle", "-n", "60", "-algo", "solve"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	// Kind mismatch through the registry is rejected.
	if err := run([]string{"-problem", "vc", "-graph", "cycle", "-n", "40", "-algo", "packing", "-prep", "2"}, io.Discard); err == nil {
		t.Fatal("covering problem accepted by the packing solver")
	}
}

func TestRunDeadline(t *testing.T) {
	err := run([]string{"-problem", "mis", "-graph", "gnp", "-n", "3000",
		"-prep", "2", "-timeout", "1ns"}, io.Discard)
	if err == nil {
		t.Fatal("1ns deadline did not abort the solve")
	}
}
