// Package repro is a full reproduction of Chang & Li, "The Complexity of
// Distributed Approximation of Packing and Covering Integer Linear
// Programs" (PODC 2023, arXiv:2305.01324): low-diameter decompositions with
// with-high-probability guarantees (Theorem 1.1), (1±ε)-approximate packing
// and covering ILPs in the LOCAL model (Theorems 1.2/1.3), the Ω(log n / ε)
// lower bounds (Theorem 1.4), the prior algorithms they improve on
// (Elkin–Neiman, Miller–Peng–Xu, Linial–Saks, GKM17), and the Appendix C
// adversarial families.
//
// The public API lives in internal/core; see README.md for the map and
// bench_test.go for the experiment regeneration targets (E1–E14).
//
// The hot path runs on reusable, allocation-free traversal workspaces
// (graph.Workspace, one per goroutine) and fans independent work — the
// preparation sparse covers, per-region local solves, per-vertex ball
// queries — across a bounded worker pool (internal/par) with
// deterministic, worker-count-independent results.
//
// Every algorithm family is registered in internal/algo, the unified
// serving surface: a name-indexed registry of typed runners
// Run(ctx, graph, params) with flag- and trace-friendly parameter bags,
// capability metadata, and a uniform result envelope. Cancellation is
// threaded through every compute layer — the worker pool stops
// dispatching, the phase loops, label searches, and branch-and-bound
// solvers poll the context at coarse strides — so any request can be
// deadline-bounded without warm-path cost.
//
// On top sits the serving layer: internal/engine caches results by
// (graph snapshot fingerprint, algorithm, canonical parameters) across N
// independently locked shards, collapses concurrent identical requests
// into one computation (joiners survive a cancelled initiator by
// retrying), and answers batch queries (cluster-of-vertex, ball lookups,
// per-cluster local solves) from the cached structure. Graphs can be
// served mutably: internal/store holds a base CSR plus a copy-on-write
// delta overlay with epoch-stamped tombstones, hands out O(1) immutable
// snapshots, advances the graph's cache identity in O(1) per mutation
// (graphio.NextFingerprint), and folds the overlay back into a fresh CSR
// on Compact — in-flight requests keep the snapshot they resolved, and
// results for superseded snapshots age out of the sharded LRU naturally.
// internal/graphio loads and saves real-world graphs in edge-list,
// DIMACS, and METIS formats (plain or gzip), fuzz-tested against hostile
// inputs; cmd/serve drives the engine with replayed or synthetic mixed
// read/write load — algorithm requests, point queries, and edge
// mutations — reporting read/write throughput and hit rate under churn,
// bounding each request with a deadline.
//
// The network boundary is internal/server: an HTTP/JSON layer that
// exposes the full registry over uploaded, generated, or mutated graphs —
// per-request deadlines map onto context cancellation (a disconnected
// client cancels its compute), an NDJSON batch endpoint streams results,
// /metrics renders the engine, store, and admission counters, and
// shutdown drains gracefully behind a bounded-concurrency admission gate.
//
// Observability is a first-class layer (internal/obs): lock-cheap
// log-bucketed latency histograms over sharded atomic counters sit on
// the engine's sub-microsecond cached-hit path (Observe is three atomic
// adds, zero allocations), a context-carried span tracer names the
// paper's phases (estimate, carve, phase3, assemble) inside each
// request without perturbing results, and a threshold-gated NDJSON
// slow-query log records per-phase breakdowns with the algorithm, cache
// key, and snapshot fingerprint. The server exposes all of it:
// Prometheus-format /metrics with per-endpoint latency histograms and
// runtime gauges, /debug/traces for the recent-span ring, and the
// standard /debug/pprof profiling plane — all bypassing the admission
// gate so a draining or overloaded server can still be inspected.
// An end-to-end equivalence suite pins that results served over HTTP are
// bit-identical to direct engine calls, snapshot stamps included.
// cmd/serve brackets it from both sides: -http serves a graph, -connect
// replays the seeded workloads against a remote server over real sockets.
//
// The serving layer scales past one process with internal/cluster:
// serve -cluster routes the same /v1 surface across N backend nodes,
// placing each graph by rendezvous-hashing its fingerprint (a
// deterministic owner plus -replicas members, no routing state to
// replicate), hedging slow reads across replicas, and forwarding
// mutations to the acting owner before fanning them out synchronously
// as epoch-chained delta-log entries — replicas verify the fingerprint
// chain on apply and recover by delta catch-up or full checkpoint
// resync. Unreachable nodes fail over along the rendezvous succession
// and are probed back in after a probation window; an equivalence suite
// pins that a 3-node cluster answers bit-identically to a single engine
// through an owner kill, a rejoin, and a compaction.
//
// The store is durable when opened with a directory (-datadir): every
// mutation is appended to a CRC32C-framed write-ahead log (internal/wal,
// group-commit fsync) before it touches memory, Compact doubles as an
// atomic on-disk checkpoint that rotates the log behind a manifest commit
// point, and store.Open recovers checkpoint-then-WAL — truncating torn
// tails and re-verifying the epoch/fingerprint chain frame by frame. On
// graceful shutdown the server persists its hottest cache keys and
// prewarms them at the next boot while /healthz answers 503-replaying;
// kill -9 crash recovery is pinned by a test that slaughters a live serve
// process mid-churn and proves the restarted state identical to an
// uninterrupted reference.
package repro
